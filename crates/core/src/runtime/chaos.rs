//! `ChaosNet`: deterministic chaos-injection transport middleware.
//!
//! Wraps any [`Transport`] and applies an explicit, seed-derived schedule
//! of message-level injections ([`minos_types::ChaosSpec`]): delaying a
//! message to the end of its dispatch, swapping it with the next message,
//! or dropping it outright. The schedule indexes messages by their
//! *protocol-level* send order at the node (one follower fan-out counts
//! as one message), so the same schedule replays identically whether or
//! not the [`super::Batched`] middleware sits underneath.
//!
//! The middleware is deliberately restricted to perturbations that cannot
//! wedge a retransmission-free protocol on the live runtimes:
//! `DelayToFlush` releases the held message inside the *same* dispatch's
//! flush, and `ReorderNext` only swaps adjacent sends. `Drop` is honored
//! too (the loopback torture tests use it), but live-runtime schedule
//! generators must not emit it — a dropped ACK stalls its write forever
//! by design (§III: MINOS has no retransmission; liveness under loss is
//! the failure detector's job, not the protocol's).
//!
//! Crash/recovery injection is *not* here: it needs cluster-level
//! machinery (`crash_node`/`recover_node`) and is driven by the
//! `minos-check` torture driver.

use super::{ActionSink, Transport};
use crate::event::{Action, DelayClass, Event, MetaOp, ReqId};
use minos_types::wire::TraceCtx;
use minos_types::{ChaosSpec, Key, Message, MsgChaos, MsgInjection, NodeId, ScopeId, Ts, Value};

/// One outbound unit: a unicast or a fan-out kept whole.
#[derive(Debug, Clone)]
enum Outbound {
    One(NodeId, Message),
    Many(Vec<NodeId>, Message),
}

/// Per-node chaos bookkeeping, persistent across dispatches. The node
/// loop owns one of these for the whole run; a fresh [`ChaosNet`] borrows
/// it per dispatch (mirroring how harnesses rebuild their handlers).
#[derive(Debug, Clone, Default)]
pub struct ChaosState {
    /// This node's injections, sorted by `nth`.
    plan: Vec<MsgInjection>,
    /// Next plan entry to consider.
    next: usize,
    /// Outbound protocol messages seen so far.
    sent: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages delayed to their dispatch's flush.
    pub delayed: u64,
    /// Adjacent message pairs swapped.
    pub reordered: u64,
}

impl ChaosState {
    /// The chaos bookkeeping for `node` under `spec`.
    #[must_use]
    pub fn new(spec: &ChaosSpec, node: NodeId) -> Self {
        ChaosState {
            plan: spec.for_node(node.0),
            ..ChaosState::default()
        }
    }

    /// Total injections that have fired.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.dropped + self.delayed + self.reordered
    }

    /// The injection (if any) scheduled for the current message, advancing
    /// past stale entries.
    fn take_injection(&mut self) -> Option<MsgChaos> {
        while let Some(inj) = self.plan.get(self.next) {
            if inj.nth < self.sent {
                self.next += 1; // stale (duplicate nth) — skip
            } else if inj.nth == self.sent {
                self.next += 1;
                return Some(inj.kind);
            } else {
                return None;
            }
        }
        None
    }
}

/// The chaos middleware: borrow it around an inner transport for one
/// dispatch. Anything still held when the dispatch flushes is released,
/// so no message outlives its dispatch.
#[derive(Debug)]
pub struct ChaosNet<'a, H: Transport> {
    inner: &'a mut H,
    state: &'a mut ChaosState,
    /// Message awaiting its adjacent-swap partner.
    swap: Option<Outbound>,
    /// Messages held until flush.
    held: Vec<Outbound>,
}

impl<'a, H: Transport> ChaosNet<'a, H> {
    /// Wraps `inner` for one dispatch, applying and updating `state`.
    pub fn new(inner: &'a mut H, state: &'a mut ChaosState) -> Self {
        ChaosNet {
            inner,
            state,
            swap: None,
            held: Vec::new(),
        }
    }

    fn forward(inner: &mut H, out: Outbound) {
        match out {
            Outbound::One(to, msg) => inner.send(to, msg),
            Outbound::Many(dests, msg) => inner.broadcast(&dests, msg),
        }
    }

    /// Routes one outbound unit through the schedule.
    fn route(&mut self, out: Outbound) {
        let inj = self.state.take_injection();
        self.state.sent += 1;
        match inj {
            Some(MsgChaos::Drop) => {
                self.state.dropped += 1;
            }
            Some(MsgChaos::DelayToFlush) => {
                self.state.delayed += 1;
                self.held.push(out);
            }
            Some(MsgChaos::ReorderNext) => {
                // Hold; the *next* send goes first, then this one. If a
                // swap is already pending, release it first (no nesting).
                if let Some(prev) = self.swap.take() {
                    Self::forward(self.inner, prev);
                }
                self.state.reordered += 1;
                self.swap = Some(out);
            }
            None => {
                Self::forward(self.inner, out);
                if let Some(prev) = self.swap.take() {
                    Self::forward(self.inner, prev);
                }
            }
        }
    }
}

impl<H: Transport> Transport for ChaosNet<'_, H> {
    fn send(&mut self, to: NodeId, msg: Message) {
        self.route(Outbound::One(to, msg));
    }

    fn broadcast(&mut self, dests: &[NodeId], msg: Message) {
        self.route(Outbound::Many(dests.to_vec(), msg));
    }

    fn flush(&mut self) {
        // Release everything still held — a swap partner that never came,
        // then the delayed messages — so chaos never outlives a dispatch.
        if let Some(prev) = self.swap.take() {
            Self::forward(self.inner, prev);
        }
        for out in std::mem::take(&mut self.held) {
            Self::forward(self.inner, out);
        }
        self.inner.flush();
    }

    fn set_ctx(&mut self, ctx: Option<TraceCtx>) {
        // Held messages never outlive their dispatch, so forwarding the
        // per-dispatch context keeps every perturbed message under the
        // right trace.
        self.inner.set_ctx(ctx);
    }
}

/// Chaos only perturbs the *messaging* half of a handler; the local half
/// passes straight through, so a `ChaosNet` over a full dispatch handler
/// is itself a full dispatch handler.
impl<H: Transport + ActionSink> ActionSink for ChaosNet<'_, H> {
    fn begin(&mut self, actions: &[Action]) {
        self.inner.begin(actions);
    }
    fn persist(&mut self, key: Key, ts: Ts, value: Value, background: bool) {
        self.inner.persist(key, ts, value, background);
    }
    fn redirect(&mut self, to: NodeId, event: Event) {
        self.inner.redirect(to, event);
    }
    fn defer(&mut self, event: Event, class: DelayClass) {
        self.inner.defer(event, class);
    }
    fn write_done(&mut self, req: ReqId, key: Key, ts: Ts, obsolete: bool) {
        self.inner.write_done(req, key, ts, obsolete);
    }
    fn read_done(&mut self, req: ReqId, key: Key, value: Value, ts: Ts) {
        self.inner.read_done(req, key, value, ts);
    }
    fn persist_scope_done(&mut self, req: ReqId, scope: ScopeId) {
        self.inner.persist_scope_done(req, scope);
    }
    fn meta(&mut self, op: &MetaOp) {
        self.inner.meta(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log {
        events: Vec<String>,
    }

    impl Transport for Log {
        fn send(&mut self, to: NodeId, msg: Message) {
            self.events.push(format!("send:{}:{:?}", to.0, msg.kind()));
        }
        fn broadcast(&mut self, dests: &[NodeId], msg: Message) {
            self.events
                .push(format!("bcast:{}:{:?}", dests.len(), msg.kind()));
        }
        fn flush(&mut self) {
            self.events.push("flush".into());
        }
    }

    fn ack(n: u32) -> Message {
        Message::Ack {
            key: Key(0),
            ts: Ts::new(NodeId(0), n),
        }
    }

    fn spec(injections: Vec<MsgInjection>) -> ChaosSpec {
        ChaosSpec {
            seed: 0,
            injections,
        }
    }

    #[test]
    fn no_injections_is_transparent() {
        let mut log = Log::default();
        let mut st = ChaosState::new(&spec(vec![]), NodeId(0));
        {
            let mut net = ChaosNet::new(&mut log, &mut st);
            net.send(NodeId(1), ack(1));
            net.broadcast(&[NodeId(1), NodeId(2)], ack(2));
            net.flush();
        }
        assert_eq!(log.events, vec!["send:1:Ack", "bcast:2:Ack", "flush"]);
        assert_eq!(st.fired(), 0);
    }

    #[test]
    fn drop_discards_and_counts() {
        let mut log = Log::default();
        let mut st = ChaosState::new(
            &spec(vec![MsgInjection {
                node: 0,
                nth: 1,
                kind: MsgChaos::Drop,
            }]),
            NodeId(0),
        );
        {
            let mut net = ChaosNet::new(&mut log, &mut st);
            net.send(NodeId(1), ack(1));
            net.send(NodeId(2), ack(2));
            net.send(NodeId(3), ack(3));
            net.flush();
        }
        assert_eq!(log.events, vec!["send:1:Ack", "send:3:Ack", "flush"]);
        assert_eq!(st.dropped, 1);
    }

    #[test]
    fn delay_holds_until_flush() {
        let mut log = Log::default();
        let mut st = ChaosState::new(
            &spec(vec![MsgInjection {
                node: 0,
                nth: 0,
                kind: MsgChaos::DelayToFlush,
            }]),
            NodeId(0),
        );
        {
            let mut net = ChaosNet::new(&mut log, &mut st);
            net.send(NodeId(1), ack(1));
            net.send(NodeId(2), ack(2));
            net.flush();
        }
        assert_eq!(log.events, vec!["send:2:Ack", "send:1:Ack", "flush"]);
        assert_eq!(st.delayed, 1);
    }

    #[test]
    fn reorder_swaps_adjacent_sends() {
        let mut log = Log::default();
        let mut st = ChaosState::new(
            &spec(vec![MsgInjection {
                node: 0,
                nth: 0,
                kind: MsgChaos::ReorderNext,
            }]),
            NodeId(0),
        );
        {
            let mut net = ChaosNet::new(&mut log, &mut st);
            net.send(NodeId(1), ack(1));
            net.send(NodeId(2), ack(2));
            net.send(NodeId(3), ack(3));
            net.flush();
        }
        assert_eq!(
            log.events,
            vec!["send:2:Ack", "send:1:Ack", "send:3:Ack", "flush"]
        );
        assert_eq!(st.reordered, 1);
    }

    #[test]
    fn reorder_with_no_partner_releases_at_flush() {
        let mut log = Log::default();
        let mut st = ChaosState::new(
            &spec(vec![MsgInjection {
                node: 0,
                nth: 0,
                kind: MsgChaos::ReorderNext,
            }]),
            NodeId(0),
        );
        {
            let mut net = ChaosNet::new(&mut log, &mut st);
            net.send(NodeId(1), ack(1));
            net.flush();
        }
        assert_eq!(log.events, vec!["send:1:Ack", "flush"]);
    }

    #[test]
    fn state_persists_across_dispatches() {
        let mut log = Log::default();
        let mut st = ChaosState::new(
            &spec(vec![MsgInjection {
                node: 0,
                nth: 2,
                kind: MsgChaos::Drop,
            }]),
            NodeId(0),
        );
        for i in 0..4 {
            let mut net = ChaosNet::new(&mut log, &mut st);
            net.send(NodeId(1), ack(i));
            net.flush();
        }
        // The third message (nth == 2, counted across dispatches) dropped.
        assert_eq!(
            log.events,
            vec![
                "send:1:Ack",
                "flush",
                "send:1:Ack",
                "flush",
                "flush",
                "send:1:Ack",
                "flush"
            ]
        );
        assert_eq!(st.dropped, 1);
    }
}
