//! The shard-routing dispatcher layer.
//!
//! A [`ShardRouter`] sits between a harness facade and its per-node
//! [`Dispatcher`](crate::runtime::Dispatcher)/[`ODispatcher`](crate::runtime::ODispatcher)
//! instances. It owns the three cluster-level decisions sharding adds —
//! the engines themselves stay per-group:
//!
//! * **Key routing**: resolve each operation's key to its shard's replica
//!   group and pick the node that serves it ([`ShardRouter::serving`]) —
//!   the submitting node when it is a replica, the shard's home node
//!   otherwise.
//! * **Scope routing**: under `<Lin, Scope>`, remember which coordinator
//!   each `(origin, scope)` pair's writes were routed to, so a
//!   `[PERSIST]sc` can be fanned out to exactly those coordinators
//!   ([`ShardRouter::route_write`] / [`ShardRouter::scope_coordinators`]).
//!   A scoped write registers in the scope table of the node that
//!   *coordinates* it — flushing at the origin would trivially succeed
//!   without persisting anything.
//! * **Multi-key fan-out**: a multi-key operation becomes one child
//!   request per key, joined by a completion barrier
//!   ([`ShardRouter::begin_barrier`] / [`ShardRouter::complete_child`]);
//!   the parent completes when its last child does.
//!
//! The router is deterministic and carries no time, so the loopback
//! clusters, both discrete-event simulators, and the threaded cluster all
//! share it.

use crate::event::ReqId;
use minos_types::{Key, NodeId, ScopeId, ShardMap};
use std::collections::{BTreeMap, BTreeSet};

/// Cluster-level shard routing state: key → serving node resolution,
/// scope → coordinator tracking, and multi-op completion barriers.
#[derive(Debug, Clone, Default)]
pub struct ShardRouter {
    map: Option<ShardMap>,
    /// Coordinators that scoped writes of `(origin, scope)` were routed
    /// to; drained when the scope is flushed.
    scopes: BTreeMap<(NodeId, ScopeId), BTreeSet<NodeId>>,
    /// Child request → parent request, for barrier-joined fan-outs.
    children: BTreeMap<ReqId, ReqId>,
    /// Parent request → children still outstanding.
    pending: BTreeMap<ReqId, usize>,
}

impl ShardRouter {
    /// A router for `map` (`None` = single fully replicated group:
    /// everything routes to its origin).
    #[must_use]
    pub fn new(map: Option<ShardMap>) -> Self {
        ShardRouter {
            map,
            ..ShardRouter::default()
        }
    }

    /// The placement map driving this router, if any.
    #[must_use]
    pub fn map(&self) -> Option<&ShardMap> {
        self.map.as_ref()
    }

    /// The epoch-gated cutover: adopts `map` iff its placement epoch is
    /// newer than the current map's (a re-replication or view change
    /// published elsewhere). Returns true when the map was installed.
    /// Scope routes and barriers in flight are kept — they name
    /// coordinators already chosen, which stay valid across a cutover
    /// (the old replicas keep serving until drained).
    pub fn install_map(&mut self, map: ShardMap) -> bool {
        let newer = self.map.as_ref().is_none_or(|m| map.epoch() > m.epoch());
        if newer {
            self.map = Some(map);
        }
        newer
    }

    /// The node that serves an operation on `key` submitted at `origin`.
    #[must_use]
    pub fn serving(&self, origin: NodeId, key: Key) -> NodeId {
        match &self.map {
            None => origin,
            Some(map) => map.serving(origin, key),
        }
    }

    /// Routes a write: returns the coordinator node and, when the write
    /// is scoped, records that `(origin, scope)`'s data now lives under
    /// that coordinator's scope table.
    pub fn route_write(&mut self, origin: NodeId, key: Key, scope: Option<ScopeId>) -> NodeId {
        let coord = self.serving(origin, key);
        if let Some(sc) = scope {
            self.note_scope_route(origin, sc, coord);
        }
        coord
    }

    /// Records that a scoped write of `(origin, scope)` was coordinated
    /// at `coord` — the manual half of [`ShardRouter::route_write`], for
    /// facades that apply liveness failover after
    /// [`ShardRouter::serving`] picks the default coordinator.
    pub fn note_scope_route(&mut self, origin: NodeId, scope: ScopeId, coord: NodeId) {
        self.scopes
            .entry((origin, scope))
            .or_default()
            .insert(coord);
    }

    /// The coordinators a `[PERSIST]sc` from `origin` must flush at;
    /// consumes the recorded set. An unknown scope (no routed writes)
    /// flushes trivially at the origin.
    pub fn scope_coordinators(&mut self, origin: NodeId, scope: ScopeId) -> Vec<NodeId> {
        match self.scopes.remove(&(origin, scope)) {
            Some(coords) if !coords.is_empty() => coords.into_iter().collect(),
            _ => vec![origin],
        }
    }

    /// Registers a barrier: `parent` completes when every request in
    /// `children` has completed.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or a child is already enrolled.
    pub fn begin_barrier(&mut self, parent: ReqId, children: &[ReqId]) {
        assert!(!children.is_empty(), "a barrier needs at least one child");
        for &c in children {
            let prev = self.children.insert(c, parent);
            assert!(prev.is_none(), "child {c:?} enrolled twice");
        }
        self.pending.insert(parent, children.len());
    }

    /// Reports a completed request. Returns `Some(parent)` exactly once —
    /// when `req` was the last outstanding child of its barrier — and
    /// `None` otherwise (not a child, or siblings still in flight).
    pub fn complete_child(&mut self, req: ReqId) -> Option<ReqId> {
        let parent = self.children.remove(&req)?;
        let left = self.pending.get_mut(&parent)?;
        *left -= 1;
        if *left == 0 {
            self.pending.remove(&parent);
            Some(parent)
        } else {
            None
        }
    }

    /// True when `req` is an in-flight barrier child (its completion
    /// should be absorbed into its parent rather than surfaced).
    #[must_use]
    pub fn is_child(&self, req: ReqId) -> bool {
        self.children.contains_key(&req)
    }

    /// The barrier parent `req` is enrolled under, if any. Unlike
    /// [`ShardRouter::complete_child`] this does not consume the
    /// enrollment — timed harnesses use it to track the latest child
    /// completion time before releasing the barrier.
    #[must_use]
    pub fn parent_of(&self, req: ReqId) -> Option<ReqId> {
        self.children.get(&req).copied()
    }

    /// True when no barrier or scope-route state is outstanding.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.children.is_empty() && self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_routes_to_exactly_one_serving_replica() {
        let map = ShardMap::uniform(4, 8, 2);
        let router = ShardRouter::new(Some(map.clone()));
        for k in 0..1000u64 {
            let key = Key(k);
            for origin in 0..8u16 {
                let serving = router.serving(NodeId(origin), key);
                assert!(
                    map.is_replica(serving, key),
                    "key {k} from node {origin} routed to non-replica {serving}"
                );
                // Deterministic.
                assert_eq!(router.serving(NodeId(origin), key), serving);
            }
        }
    }

    #[test]
    fn unsharded_router_is_identity() {
        let router = ShardRouter::new(None);
        assert_eq!(router.serving(NodeId(3), Key(42)), NodeId(3));
    }

    #[test]
    fn placement_epoch_bumps_are_monotonic() {
        let mut map = ShardMap::uniform(4, 8, 2);
        let e0 = map.epoch();
        let e1 = map.bump_epoch();
        let e2 = map.bump_epoch();
        assert!(e0 < e1 && e1 < e2);
    }

    #[test]
    fn install_map_is_epoch_gated() {
        let mut router = ShardRouter::new(Some(ShardMap::uniform(2, 4, 2)));
        let mut newer = ShardMap::uniform(2, 4, 2);
        newer.remove_node(NodeId(1)).unwrap(); // epoch 2
        let stale = ShardMap::uniform(2, 4, 2); // epoch 1 again
        assert!(router.install_map(newer.clone()));
        assert_eq!(router.map().unwrap().epoch(), 2);
        assert!(!router.install_map(stale), "stale epoch rejected");
        assert_eq!(router.map().unwrap(), &newer);
        // An unsharded router adopts any map (None has no epoch to gate on).
        let mut bare = ShardRouter::new(None);
        assert!(bare.install_map(ShardMap::uniform(1, 2, 2)));
    }

    #[test]
    fn scoped_writes_record_their_coordinators() {
        let map = ShardMap::uniform(2, 4, 2); // s0: n0,n1  s1: n2,n3
        let mut router = ShardRouter::new(Some(map));
        let origin = NodeId(0);
        let sc = ScopeId(7);
        // Key 0 → shard 0 (origin is a replica); key 1 → shard 1 (home n2).
        assert_eq!(router.route_write(origin, Key(0), Some(sc)), NodeId(0));
        assert_eq!(router.route_write(origin, Key(1), Some(sc)), NodeId(2));
        let coords = router.scope_coordinators(origin, sc);
        assert_eq!(coords, vec![NodeId(0), NodeId(2)]);
        // Consumed: a second flush of the (now empty) scope is trivial.
        assert_eq!(router.scope_coordinators(origin, sc), vec![origin]);
    }

    #[test]
    fn barrier_fires_exactly_once_on_last_child() {
        let mut router = ShardRouter::new(None);
        let parent = ReqId(100);
        let kids = [ReqId(101), ReqId(102), ReqId(103)];
        router.begin_barrier(parent, &kids);
        assert!(router.is_child(ReqId(102)));
        assert_eq!(router.complete_child(ReqId(101)), None);
        assert_eq!(router.complete_child(ReqId(103)), None);
        assert_eq!(router.complete_child(ReqId(102)), Some(parent));
        assert_eq!(router.complete_child(ReqId(102)), None, "fires once");
        assert!(router.is_quiescent());
    }
}
