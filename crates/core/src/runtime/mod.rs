//! The shared action-dispatch runtime.
//!
//! Every MINOS harness — the in-process loopback cluster, the threaded
//! crossbeam cluster, the TCP cluster, both discrete-event simulators and
//! both model-checker systems — used to carry its own `match act { ... }`
//! loop interpreting [`Action`]s/[`OAction`]s. Six copies of the protocol's
//! *operational* semantics drifted independently (the threaded cluster,
//! for instance, silently dropped [`Action::Meta`] hints).
//!
//! This module owns the single canonical interpretation:
//!
//! * [`Dispatcher`] (MINOS-B) and [`ODispatcher`] (MINOS-O) feed an event
//!   to an engine and walk the resulting actions exactly once, translating
//!   each into a call on a harness-provided handler and keeping protocol
//!   counters ([`DispatchStats`]/[`ODispatchStats`]) as they go. Fan-out
//!   destination computation — replicas of a key for MINOS-B, all peer
//!   SmartNICs for MINOS-O — lives here, not in the harnesses.
//! * [`Transport`] is the messaging half of a handler: `send` one protocol
//!   message, `broadcast` one message to a destination set, and `flush`
//!   at the end of a dispatch (the batch boundary).
//! * [`ActionSink`]/[`OSink`] are the local half: persists, deferred
//!   events, client completions, redirects and timing hints.
//! * [`Batched`] is transport middleware implementing the paper's Fig. 12
//!   *batching* and *broadcast* NIC capabilities for the live runtimes:
//!   it coalesces the messages of one dispatch into per-destination
//!   frames and fans a follower broadcast out of a single enqueue,
//!   delegating framed delivery to a [`FrameTransport`].
//!
//! Actions are streamed to the handler **in emission order**; handlers
//! that gate sends on earlier actions of the same dispatch (the MINOS-O
//! simulator gates ACKs on its FIFO enqueues) can rely on that.
//!
//! Being the single choke point also makes the dispatchers the single
//! *instrumentation* point: a [`crate::obs::Tracer`] installed
//! via [`Dispatcher::set_tracer`] / [`ODispatcher::set_tracer`] emits a
//! structured [`crate::obs::TraceEvent`] at every protocol-event
//! boundary, in every harness, from one piece of code. Without a tracer
//! (the default) the only cost is an `Option` discriminant check.
//!
//! Time still does not exist here: the dispatcher is as deterministic as
//! the engines, and the simulators implement [`Transport`] over their
//! virtual-time event queues.

mod batch;
mod chaos;
mod router;

pub use batch::{BatchPolicy, Batched, FrameTransport, TransportCounters};
pub use chaos::{ChaosNet, ChaosState};
pub use router::ShardRouter;

use crate::baseline::NodeEngine;
use crate::event::{Action, DelayClass, Event, MetaOp, ReqId};
use crate::obs::{self, TraceEvent, TraceMeta, Tracer};
use crate::offload::{OAction, OEvent, ONodeEngine, PcieMsg, Side};
use minos_types::wire::TraceCtx;
use minos_types::{Key, Message, NodeId, ScopeId, Ts, Value};

/// The messaging half of a dispatch handler: how protocol messages leave
/// the node.
pub trait Transport {
    /// Delivers `msg` to peer `to`.
    fn send(&mut self, to: NodeId, msg: Message);

    /// Delivers `msg` to every node in `dests` (a follower fan-out).
    ///
    /// The default expands to one [`Transport::send`] per destination;
    /// transports with native fan-out (the [`Batched`] middleware, the
    /// simulators' NIC models) override it.
    fn broadcast(&mut self, dests: &[NodeId], msg: Message) {
        for &d in dests {
            self.send(d, msg.clone());
        }
    }

    /// Marks the end of one dispatch — the batch boundary. Buffering
    /// transports emit their coalesced frames here.
    fn flush(&mut self) {}

    /// Installs the trace context every message of the current dispatch
    /// travels under (the dispatcher calls this once per dispatch,
    /// before any send). Transports that put traffic on a wire attach it
    /// to their frames; the default ignores it.
    fn set_ctx(&mut self, _ctx: Option<TraceCtx>) {}
}

/// The local half of a MINOS-B dispatch handler: everything an engine
/// asks of its node other than messaging.
pub trait ActionSink {
    /// Called once per dispatch with the full action batch, before any
    /// per-action call. Harnesses that charge a handler cost up front
    /// (the simulator's core acquisition) hook this; most ignore it.
    fn begin(&mut self, _actions: &[Action]) {}

    /// Persist `key = value` at `ts` to the durable medium; the harness
    /// must eventually feed [`Event::PersistDone`] back to the engine.
    fn persist(&mut self, key: Key, ts: Ts, value: Value, background: bool);

    /// Hand `event` to node `to` (a mis-routed client request).
    fn redirect(&mut self, to: NodeId, event: Event);

    /// Re-inject `event` into this node after the class's dispatch delay.
    fn defer(&mut self, event: Event, class: DelayClass);

    /// A client write completed.
    fn write_done(&mut self, req: ReqId, key: Key, ts: Ts, obsolete: bool);

    /// A client read completed.
    fn read_done(&mut self, req: ReqId, key: Key, value: Value, ts: Ts);

    /// A client `[PERSIST]sc` completed.
    fn persist_scope_done(&mut self, req: ReqId, scope: ScopeId);

    /// A timing hint. The dispatcher already counts these in
    /// [`DispatchStats::meta`]; only harnesses that *charge* for them
    /// (the simulator) need to hook this.
    fn meta(&mut self, _op: &MetaOp) {}
}

/// Counters over [`MetaOp`] timing hints, kept per node by the
/// dispatchers so every harness reports the same protocol-step counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetaStats {
    /// Obsoleteness checks performed.
    pub obsolete_checks: u64,
    /// RDLock snatches (§III-A optimization).
    pub snatch_rd_locks: u64,
    /// RDLock releases.
    pub rd_unlocks: u64,
    /// WRLock acquisitions.
    pub wr_lock_acquires: u64,
    /// WRLock releases.
    pub wr_lock_releases: u64,
    /// LLC update operations.
    pub llc_updates: u64,
    /// Total bytes written through LLC updates.
    pub llc_bytes: u64,
    /// Timestamp-counter updates.
    pub ts_updates: u64,
}

impl MetaStats {
    /// Counts one hint.
    pub fn record(&mut self, op: &MetaOp) {
        match op {
            MetaOp::ObsoleteCheck => self.obsolete_checks += 1,
            MetaOp::SnatchRdLock => self.snatch_rd_locks += 1,
            MetaOp::RdUnlock => self.rd_unlocks += 1,
            MetaOp::WrLockAcquire => self.wr_lock_acquires += 1,
            MetaOp::WrLockRelease => self.wr_lock_releases += 1,
            MetaOp::LlcUpdate { bytes } => {
                self.llc_updates += 1;
                self.llc_bytes += bytes;
            }
            MetaOp::TsUpdate => self.ts_updates += 1,
        }
    }

    /// Total hint count (LLC bytes excluded).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.obsolete_checks
            + self.snatch_rd_locks
            + self.rd_unlocks
            + self.wr_lock_acquires
            + self.wr_lock_releases
            + self.llc_updates
            + self.ts_updates
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &MetaStats) {
        self.obsolete_checks += other.obsolete_checks;
        self.snatch_rd_locks += other.snatch_rd_locks;
        self.rd_unlocks += other.rd_unlocks;
        self.wr_lock_acquires += other.wr_lock_acquires;
        self.wr_lock_releases += other.wr_lock_releases;
        self.llc_updates += other.llc_updates;
        self.llc_bytes += other.llc_bytes;
        self.ts_updates += other.ts_updates;
    }
}

/// Per-node protocol counters kept by [`Dispatcher`]. Identical workloads
/// must produce identical stats in every harness — the cross-harness
/// parity tests assert exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Unicast protocol messages emitted.
    pub sends: u64,
    /// Follower fan-outs emitted ([`Action::SendToFollowers`]).
    pub fanouts: u64,
    /// Total destinations across all fan-outs.
    pub fanout_dests: u64,
    /// Persist requests issued to the durable medium.
    pub persists: u64,
    /// Client requests redirected to another node.
    pub redirects: u64,
    /// Events re-injected after a dispatch delay.
    pub defers: u64,
    /// Client writes completed.
    pub writes_done: u64,
    /// Client reads completed.
    pub reads_done: u64,
    /// Client `[PERSIST]sc` transactions completed.
    pub persist_scopes_done: u64,
    /// Timing-hint counts.
    pub meta: MetaStats,
}

impl DispatchStats {
    /// Adds `other` into `self` (cluster-wide aggregation).
    pub fn merge(&mut self, other: &DispatchStats) {
        self.sends += other.sends;
        self.fanouts += other.fanouts;
        self.fanout_dests += other.fanout_dests;
        self.persists += other.persists;
        self.redirects += other.redirects;
        self.defers += other.defers;
        self.writes_done += other.writes_done;
        self.reads_done += other.reads_done;
        self.persist_scopes_done += other.persist_scopes_done;
        self.meta.merge(&other.meta);
    }
}

/// The canonical MINOS-B action interpreter.
///
/// One dispatcher serves one engine (it keeps that node's
/// [`DispatchStats`]); harnesses that re-create handlers per step keep
/// the dispatcher across steps so counters accumulate.
#[derive(Debug, Clone, Default)]
pub struct Dispatcher {
    stats: DispatchStats,
    scratch: Vec<Action>,
    tracer: Option<Tracer>,
}

impl Dispatcher {
    /// A fresh dispatcher with zeroed stats and no tracer.
    #[must_use]
    pub fn new() -> Self {
        Dispatcher::default()
    }

    /// This node's accumulated protocol counters.
    #[must_use]
    pub fn stats(&self) -> &DispatchStats {
        &self.stats
    }

    /// Installs (or, with `None`, removes) the observability tracer.
    /// Every subsequent dispatch emits [`TraceEvent`]s through it.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    /// The installed tracer (harnesses flush its sinks at shutdown).
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_mut()
    }

    /// Emits the trace boundary for an outgoing action, if tracing.
    fn trace_action(&mut self, engine: &NodeEngine, act: &Action) {
        if self.tracer.is_some() {
            let dests = match act {
                Action::SendToFollowers { msg } => engine.fanout_targets(msg.key()).len(),
                _ => 0,
            };
            if let Some(ev) = obs::trace_of_action(act, dests) {
                if let Some(tr) = self.tracer.as_mut() {
                    tr.emit(ev);
                }
            }
        }
    }

    /// Emits the batch-flush boundary if the dispatch put traffic on the
    /// wire (`wire0` is `sends + fanouts` before the dispatch).
    fn trace_flush(&mut self, wire0: u64) {
        if let Some(tr) = self.tracer.as_mut() {
            let sent = self.stats.sends + self.stats.fanouts - wire0;
            if sent > 0 {
                tr.emit(TraceEvent::BatchFlushed {
                    sends: u32::try_from(sent).unwrap_or(u32::MAX),
                });
            }
        }
    }

    /// Feeds `event` to `engine` and interprets every resulting action
    /// through `handler`, in emission order, ending with a
    /// [`Transport::flush`]. Equivalent to [`Dispatcher::dispatch_ctx`]
    /// with no inbound trace context.
    pub fn dispatch<H: Transport + ActionSink>(
        &mut self,
        engine: &mut NodeEngine,
        event: Event,
        handler: &mut H,
    ) {
        self.dispatch_ctx(engine, event, None, handler);
    }

    /// [`Dispatcher::dispatch`] with the distributed-tracing context the
    /// event arrived under (`None` for untraced or locally originated
    /// events).
    ///
    /// With a tracer installed, the dispatch joins the inbound trace (or
    /// mints a fresh trace id at a client-op admission), mints its own
    /// span, stamps every emitted [`TraceEvent`] with the resulting
    /// [`TraceMeta`], and hands the handler an *outgoing*
    /// [`TraceCtx`] — `(trace_id, this span, local clock)` — via
    /// [`Transport::set_ctx`] so wire transports can attach it to this
    /// dispatch's frames. Without a tracer the inbound context is
    /// forwarded unchanged, so untraced relay nodes do not sever a trace.
    pub fn dispatch_ctx<H: Transport + ActionSink>(
        &mut self,
        engine: &mut NodeEngine,
        event: Event,
        ctx: Option<TraceCtx>,
        handler: &mut H,
    ) {
        let mut out_ctx = ctx.filter(|c| !c.is_empty());
        if let Some(tr) = self.tracer.as_mut() {
            let inbound = out_ctx.unwrap_or_default();
            let admission = matches!(
                event,
                Event::ClientWrite { .. }
                    | Event::ClientRead { .. }
                    | Event::ClientPersistScope { .. }
            );
            let trace_id = if inbound.trace_id != 0 {
                inbound.trace_id
            } else if admission {
                tr.mint_id()
            } else {
                0
            };
            let span = tr.mint_id();
            tr.set_meta(TraceMeta {
                trace_id,
                span,
                parent: inbound.span,
                remote_ns: inbound.origin_ns,
            });
            if let Some(ev) = obs::trace_of_event(&event) {
                tr.emit(ev);
            }
            // The remote clock belongs to the input boundary only; action
            // records carry just the dispatch identity.
            let meta = tr.meta();
            tr.set_meta(TraceMeta {
                remote_ns: 0,
                ..meta
            });
            out_ctx = Some(TraceCtx {
                trace_id,
                span,
                origin_ns: tr.origin_ns(),
            });
        }
        handler.set_ctx(out_ctx);
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        engine.on_event(event, &mut out);
        handler.begin(&out);
        let wire0 = self.stats.sends + self.stats.fanouts;
        for act in out.drain(..) {
            self.apply(engine, act, handler);
        }
        handler.flush();
        self.trace_flush(wire0);
        if let Some(tr) = self.tracer.as_mut() {
            tr.set_meta(TraceMeta::default());
        }
        self.scratch = out;
    }

    /// Interprets an already-collected action batch — for harness paths
    /// that drive the engine outside `on_event` (failure-handling polls).
    pub fn run_actions<H: Transport + ActionSink>(
        &mut self,
        engine: &NodeEngine,
        actions: Vec<Action>,
        handler: &mut H,
    ) {
        handler.begin(&actions);
        let wire0 = self.stats.sends + self.stats.fanouts;
        for act in actions {
            self.apply(engine, act, handler);
        }
        handler.flush();
        self.trace_flush(wire0);
    }

    fn apply<H: Transport + ActionSink>(&mut self, engine: &NodeEngine, act: Action, h: &mut H) {
        self.trace_action(engine, &act);
        match act {
            Action::Send { to, msg } => {
                self.stats.sends += 1;
                h.send(to, msg);
            }
            Action::SendToFollowers { msg } => {
                let dests = engine.fanout_targets(msg.key());
                self.stats.fanouts += 1;
                self.stats.fanout_dests += dests.len() as u64;
                h.broadcast(&dests, msg);
            }
            Action::Persist {
                key,
                ts,
                value,
                background,
            } => {
                self.stats.persists += 1;
                h.persist(key, ts, value, background);
            }
            Action::Redirect { to, event } => {
                self.stats.redirects += 1;
                h.redirect(to, event);
            }
            Action::Defer { event, class } => {
                self.stats.defers += 1;
                h.defer(event, class);
            }
            Action::WriteDone {
                req,
                key,
                ts,
                obsolete,
            } => {
                self.stats.writes_done += 1;
                h.write_done(req, key, ts, obsolete);
            }
            Action::ReadDone {
                req,
                key,
                value,
                ts,
            } => {
                self.stats.reads_done += 1;
                h.read_done(req, key, value, ts);
            }
            Action::PersistScopeDone { req, scope } => {
                self.stats.persist_scopes_done += 1;
                h.persist_scope_done(req, scope);
            }
            Action::Meta(op) => {
                self.stats.meta.record(&op);
                h.meta(&op);
            }
        }
    }
}

/// The local half of a MINOS-O dispatch handler.
pub trait OSink {
    /// Called once per dispatch with the full action batch (see
    /// [`ActionSink::begin`]).
    fn begin(&mut self, _actions: &[OAction]) {}

    /// Deliver a PCIe descriptor from `from` to the node's other side
    /// after the PCIe delay.
    fn pcie(&mut self, from: Side, msg: PcieMsg);

    /// Enqueue `(key, ts)` into the volatile FIFO; the harness feeds back
    /// [`OEvent::VfifoDrained`].
    fn vfifo_enqueue(&mut self, key: Key, ts: Ts, bytes: u64);

    /// Enqueue `(key, ts)` into the durable FIFO; the harness feeds back
    /// [`OEvent::DfifoDrained`].
    fn dfifo_enqueue(&mut self, key: Key, ts: Ts, bytes: u64);

    /// Re-inject `event` after a local dispatch delay.
    fn defer(&mut self, event: OEvent);

    /// A client write completed.
    fn write_done(&mut self, req: ReqId, key: Key, ts: Ts, obsolete: bool);

    /// A client read completed.
    fn read_done(&mut self, req: ReqId, key: Key, value: Value, ts: Ts);

    /// A client `[PERSIST]sc` completed.
    fn persist_scope_done(&mut self, req: ReqId, scope: ScopeId);

    /// A side-tagged timing hint (already counted by the dispatcher).
    fn meta(&mut self, _side: Side, _op: &MetaOp) {}

    /// A coherent metadata line migrated between host and SmartNIC
    /// (already counted by the dispatcher).
    fn coherence_transfer(&mut self, _key: Key) {}
}

/// Per-node protocol counters kept by [`ODispatcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ODispatchStats {
    /// Unicast NIC-to-NIC messages emitted.
    pub sends: u64,
    /// Broadcast-module fan-outs emitted.
    pub fanouts: u64,
    /// Total destinations across all fan-outs.
    pub fanout_dests: u64,
    /// PCIe descriptors crossing between host and SmartNIC.
    pub pcie_msgs: u64,
    /// vFIFO enqueues.
    pub vfifo_enqueues: u64,
    /// dFIFO enqueues.
    pub dfifo_enqueues: u64,
    /// Events re-injected after a dispatch delay.
    pub defers: u64,
    /// Client writes completed.
    pub writes_done: u64,
    /// Client reads completed.
    pub reads_done: u64,
    /// Client `[PERSIST]sc` transactions completed.
    pub persist_scopes_done: u64,
    /// Coherence-line transfers between host and SmartNIC.
    pub coherence_transfers: u64,
    /// Timing hints performed by the host CPU.
    pub host_meta: MetaStats,
    /// Timing hints performed by the SmartNIC.
    pub snic_meta: MetaStats,
}

impl ODispatchStats {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &ODispatchStats) {
        self.sends += other.sends;
        self.fanouts += other.fanouts;
        self.fanout_dests += other.fanout_dests;
        self.pcie_msgs += other.pcie_msgs;
        self.vfifo_enqueues += other.vfifo_enqueues;
        self.dfifo_enqueues += other.dfifo_enqueues;
        self.defers += other.defers;
        self.writes_done += other.writes_done;
        self.reads_done += other.reads_done;
        self.persist_scopes_done += other.persist_scopes_done;
        self.coherence_transfers += other.coherence_transfers;
        self.host_meta.merge(&other.host_meta);
        self.snic_meta.merge(&other.snic_meta);
    }
}

/// The canonical MINOS-O action interpreter.
#[derive(Debug, Clone, Default)]
pub struct ODispatcher {
    stats: ODispatchStats,
    scratch: Vec<OAction>,
    tracer: Option<Tracer>,
}

impl ODispatcher {
    /// A fresh dispatcher with zeroed stats and no tracer.
    #[must_use]
    pub fn new() -> Self {
        ODispatcher::default()
    }

    /// This node's accumulated protocol counters.
    #[must_use]
    pub fn stats(&self) -> &ODispatchStats {
        &self.stats
    }

    /// Installs (or, with `None`, removes) the observability tracer.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    /// The installed tracer (harnesses flush its sinks at shutdown).
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_mut()
    }

    /// See [`Dispatcher::trace_flush`].
    fn trace_flush(&mut self, wire0: u64) {
        if let Some(tr) = self.tracer.as_mut() {
            let sent = self.stats.sends + self.stats.fanouts - wire0;
            if sent > 0 {
                tr.emit(TraceEvent::BatchFlushed {
                    sends: u32::try_from(sent).unwrap_or(u32::MAX),
                });
            }
        }
    }

    /// Feeds `event` to `engine` and interprets every resulting action
    /// through `handler`, in emission order, ending with a
    /// [`Transport::flush`]. Equivalent to [`ODispatcher::dispatch_ctx`]
    /// with no inbound trace context.
    pub fn dispatch<H: Transport + OSink>(
        &mut self,
        engine: &mut ONodeEngine,
        event: OEvent,
        handler: &mut H,
    ) {
        self.dispatch_ctx(engine, event, None, handler);
    }

    /// [`ODispatcher::dispatch`] with the trace context the event
    /// arrived under — see [`Dispatcher::dispatch_ctx`] for semantics.
    pub fn dispatch_ctx<H: Transport + OSink>(
        &mut self,
        engine: &mut ONodeEngine,
        event: OEvent,
        ctx: Option<TraceCtx>,
        handler: &mut H,
    ) {
        let mut out_ctx = ctx.filter(|c| !c.is_empty());
        if let Some(tr) = self.tracer.as_mut() {
            let inbound = out_ctx.unwrap_or_default();
            let admission = matches!(
                event,
                OEvent::ClientWrite { .. }
                    | OEvent::ClientRead { .. }
                    | OEvent::ClientPersistScope { .. }
            );
            let trace_id = if inbound.trace_id != 0 {
                inbound.trace_id
            } else if admission {
                tr.mint_id()
            } else {
                0
            };
            let span = tr.mint_id();
            tr.set_meta(TraceMeta {
                trace_id,
                span,
                parent: inbound.span,
                remote_ns: inbound.origin_ns,
            });
            if let Some(ev) = obs::trace_of_oevent(&event) {
                tr.emit(ev);
            }
            let meta = tr.meta();
            tr.set_meta(TraceMeta {
                remote_ns: 0,
                ..meta
            });
            out_ctx = Some(TraceCtx {
                trace_id,
                span,
                origin_ns: tr.origin_ns(),
            });
        }
        handler.set_ctx(out_ctx);
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        engine.on_event(event, &mut out);
        handler.begin(&out);
        let wire0 = self.stats.sends + self.stats.fanouts;
        for act in out.drain(..) {
            self.apply(engine, act, handler);
        }
        handler.flush();
        self.trace_flush(wire0);
        if let Some(tr) = self.tracer.as_mut() {
            tr.set_meta(TraceMeta::default());
        }
        self.scratch = out;
    }

    fn apply<H: Transport + OSink>(&mut self, engine: &ONodeEngine, act: OAction, h: &mut H) {
        if self.tracer.is_some() {
            let dests = match &act {
                OAction::SendToFollowers { msg } => engine.fanout_targets(msg.key()).len(),
                _ => 0,
            };
            if let Some(ev) = obs::trace_of_oaction(&act, dests) {
                if let Some(tr) = self.tracer.as_mut() {
                    tr.emit(ev);
                }
            }
        }
        match act {
            OAction::Send { to, msg } => {
                self.stats.sends += 1;
                h.send(to, msg);
            }
            OAction::SendToFollowers { msg } => {
                // The SNIC broadcast module fans out to the key's replica
                // group — every peer when the store is fully replicated
                // (the paper's MINOS-O shape), the shard's peers under a
                // placement map.
                let dests = engine.fanout_targets(msg.key());
                self.stats.fanouts += 1;
                self.stats.fanout_dests += dests.len() as u64;
                h.broadcast(&dests, msg);
            }
            OAction::Pcie { from, msg } => {
                self.stats.pcie_msgs += 1;
                h.pcie(from, msg);
            }
            OAction::VfifoEnqueue { key, ts, bytes } => {
                self.stats.vfifo_enqueues += 1;
                h.vfifo_enqueue(key, ts, bytes);
            }
            OAction::DfifoEnqueue { key, ts, bytes } => {
                self.stats.dfifo_enqueues += 1;
                h.dfifo_enqueue(key, ts, bytes);
            }
            OAction::Defer { event } => {
                self.stats.defers += 1;
                h.defer(event);
            }
            OAction::WriteDone {
                req,
                key,
                ts,
                obsolete,
            } => {
                self.stats.writes_done += 1;
                h.write_done(req, key, ts, obsolete);
            }
            OAction::ReadDone {
                req,
                key,
                value,
                ts,
            } => {
                self.stats.reads_done += 1;
                h.read_done(req, key, value, ts);
            }
            OAction::PersistScopeDone { req, scope } => {
                self.stats.persist_scopes_done += 1;
                h.persist_scope_done(req, scope);
            }
            OAction::Meta { side, op } => {
                match side {
                    Side::Host => self.stats.host_meta.record(&op),
                    Side::Snic => self.stats.snic_meta.record(&op),
                }
                h.meta(side, &op);
            }
            OAction::CoherenceTransfer { key } => {
                self.stats.coherence_transfers += 1;
                h.coherence_transfer(key);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Batch digests for `begin` hooks.
//
// Cost-modelling handlers (the discrete-event simulators) charge compute
// for a whole dispatch up front, before the per-action calls stream in.
// These digests give `begin` implementations the aggregate facts they
// need without re-interpreting `Action`/`OAction` variants — keeping the
// match over action shapes confined to this module.

/// The [`MetaOp`] timing hints in a MINOS-B action batch, in order.
pub fn meta_ops(actions: &[Action]) -> impl Iterator<Item = &MetaOp> {
    actions.iter().filter_map(|a| match a {
        Action::Meta(op) => Some(op),
        _ => None,
    })
}

/// Payload sizes of the critical-path (foreground) persists in a
/// MINOS-B action batch, in bytes.
pub fn foreground_persist_bytes(actions: &[Action]) -> impl Iterator<Item = u64> + '_ {
    actions.iter().filter_map(|a| match a {
        Action::Persist {
            value,
            background: false,
            ..
        } => Some(value.len() as u64),
        _ => None,
    })
}

/// The `(side, op)` timing hints in a MINOS-O action batch, in order.
pub fn o_meta_ops(actions: &[OAction]) -> impl Iterator<Item = (Side, &MetaOp)> {
    actions.iter().filter_map(|a| match a {
        OAction::Meta { side, op } => Some((*side, op)),
        _ => None,
    })
}

/// Number of host/SNIC coherence snoops in a MINOS-O action batch.
#[must_use]
pub fn coherence_transfer_count(actions: &[OAction]) -> usize {
    actions
        .iter()
        .filter(|a| matches!(a, OAction::CoherenceTransfer { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_types::{DdpModel, PersistencyModel};

    /// A handler that records everything it is asked to do.
    #[derive(Default)]
    struct Recorder {
        sent: Vec<(NodeId, Message)>,
        broadcasts: Vec<(Vec<NodeId>, Message)>,
        persists: Vec<(Key, Ts)>,
        deferred: Vec<Event>,
        completions: Vec<ReqId>,
        flushes: usize,
        begun: usize,
    }

    impl Transport for Recorder {
        fn send(&mut self, to: NodeId, msg: Message) {
            self.sent.push((to, msg));
        }
        fn broadcast(&mut self, dests: &[NodeId], msg: Message) {
            self.broadcasts.push((dests.to_vec(), msg));
        }
        fn flush(&mut self) {
            self.flushes += 1;
        }
    }

    impl ActionSink for Recorder {
        fn begin(&mut self, _actions: &[Action]) {
            self.begun += 1;
        }
        fn persist(&mut self, key: Key, ts: Ts, _value: Value, _background: bool) {
            self.persists.push((key, ts));
        }
        fn redirect(&mut self, _to: NodeId, _event: Event) {}
        fn defer(&mut self, event: Event, _class: DelayClass) {
            self.deferred.push(event);
        }
        fn write_done(&mut self, req: ReqId, _key: Key, _ts: Ts, _obsolete: bool) {
            self.completions.push(req);
        }
        fn read_done(&mut self, req: ReqId, _key: Key, _value: Value, _ts: Ts) {
            self.completions.push(req);
        }
        fn persist_scope_done(&mut self, req: ReqId, _scope: ScopeId) {
            self.completions.push(req);
        }
    }

    #[test]
    fn write_fanout_goes_through_broadcast() {
        let model = DdpModel::lin(PersistencyModel::Eventual);
        let mut engine = NodeEngine::new(NodeId(0), 3, model);
        let mut disp = Dispatcher::new();
        let mut h = Recorder::default();

        disp.dispatch(
            &mut engine,
            Event::ClientWrite {
                key: Key(1),
                value: "v".into(),
                scope: None,
                req: ReqId(1),
            },
            &mut h,
        );
        // The write body is deferred; deliver it to trigger the fan-out.
        let start = h.deferred.pop().expect("deferred StartWrite");
        disp.dispatch(&mut engine, start, &mut h);

        let (dests, msg) = h.broadcasts.pop().expect("INV fan-out");
        assert!(matches!(msg, Message::Inv { .. }));
        assert!(!dests.contains(&NodeId(0)), "no self-fanout");
        assert!(!dests.is_empty());
        assert_eq!(disp.stats().fanouts, 1);
        assert_eq!(disp.stats().fanout_dests, dests.len() as u64);
        assert_eq!(h.flushes, 2, "one flush per dispatch");
        assert_eq!(h.begun, 2, "one begin per dispatch");
        assert!(disp.stats().defers >= 1);
    }

    #[test]
    fn read_completes_locally_and_counts() {
        let model = DdpModel::lin(PersistencyModel::Synchronous);
        let mut engine = NodeEngine::new(NodeId(0), 1, model);
        let mut disp = Dispatcher::new();
        let mut h = Recorder::default();
        disp.dispatch(
            &mut engine,
            Event::ClientRead {
                key: Key(5),
                req: ReqId(7),
            },
            &mut h,
        );
        assert_eq!(h.completions, vec![ReqId(7)]);
        assert_eq!(disp.stats().reads_done, 1);
    }

    #[derive(Default)]
    struct ORecorder {
        broadcasts: Vec<(Vec<NodeId>, Message)>,
        pcie: Vec<(Side, PcieMsg)>,
        deferred: Vec<OEvent>,
    }

    impl Transport for ORecorder {
        fn send(&mut self, _to: NodeId, _msg: Message) {}
        fn broadcast(&mut self, dests: &[NodeId], msg: Message) {
            self.broadcasts.push((dests.to_vec(), msg));
        }
    }

    impl OSink for ORecorder {
        fn pcie(&mut self, from: Side, msg: PcieMsg) {
            self.pcie.push((from, msg));
        }
        fn vfifo_enqueue(&mut self, _key: Key, _ts: Ts, _bytes: u64) {}
        fn dfifo_enqueue(&mut self, _key: Key, _ts: Ts, _bytes: u64) {}
        fn defer(&mut self, event: OEvent) {
            self.deferred.push(event);
        }
        fn write_done(&mut self, _req: ReqId, _key: Key, _ts: Ts, _obsolete: bool) {}
        fn read_done(&mut self, _req: ReqId, _key: Key, _value: Value, _ts: Ts) {}
        fn persist_scope_done(&mut self, _req: ReqId, _scope: ScopeId) {}
    }

    #[test]
    fn offload_fanout_targets_all_peers() {
        let model = DdpModel::lin(PersistencyModel::Eventual);
        let mut engine = ONodeEngine::new(NodeId(1), 4, model);
        let mut disp = ODispatcher::new();
        let mut h = ORecorder::default();

        disp.dispatch(
            &mut engine,
            OEvent::ClientWrite {
                key: Key(1),
                value: "v".into(),
                scope: None,
                req: ReqId(1),
            },
            &mut h,
        );
        // Drive deferred host work and the PCIe descriptor until the SNIC
        // broadcasts the INV.
        for _ in 0..8 {
            if let Some(ev) = h.deferred.pop() {
                disp.dispatch(&mut engine, ev, &mut h);
            }
            if let Some((from, msg)) = h.pcie.pop() {
                let ev = match from {
                    Side::Host => OEvent::PcieFromHost(msg),
                    Side::Snic => OEvent::PcieFromSnic(msg),
                };
                disp.dispatch(&mut engine, ev, &mut h);
            }
            if !h.broadcasts.is_empty() {
                break;
            }
        }
        let (dests, msg) = h.broadcasts.pop().expect("SNIC INV fan-out");
        assert!(matches!(msg, Message::Inv { .. }));
        assert_eq!(
            dests,
            vec![NodeId(0), NodeId(2), NodeId(3)],
            "all peers except self"
        );
        assert_eq!(disp.stats().fanouts, 1);
        assert_eq!(disp.stats().fanout_dests, 3);
        assert!(disp.stats().pcie_msgs >= 1);
    }

    #[test]
    fn meta_stats_count_per_kind() {
        let mut m = MetaStats::default();
        m.record(&MetaOp::ObsoleteCheck);
        m.record(&MetaOp::LlcUpdate { bytes: 128 });
        m.record(&MetaOp::LlcUpdate { bytes: 64 });
        m.record(&MetaOp::TsUpdate);
        assert_eq!(m.obsolete_checks, 1);
        assert_eq!(m.llc_updates, 2);
        assert_eq!(m.llc_bytes, 192);
        assert_eq!(m.total(), 4);

        let mut sum = MetaStats::default();
        sum.merge(&m);
        sum.merge(&m);
        assert_eq!(sum.llc_bytes, 384);
        assert_eq!(sum.total(), 8);
    }
}
