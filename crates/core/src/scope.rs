//! Scope bookkeeping for the `<Lin, Scope>` model.

use crate::event::ReqId;
use minos_types::{Key, NodeId, ScopeId, Ts};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One scope's state at one node.
///
/// Scopes are identified by `(owner, ScopeId)` where `owner` is the
/// coordinator node that opened the scope; `[PERSIST]sc` runs as its own
/// transaction (Figure 3(vii)/(viii)).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ScopeState {
    /// Every write observed in the scope (kept until `[VAL_P]sc` so the
    /// final `glb_durableTS` raise knows which records to touch).
    pub writes: BTreeSet<(Key, Ts)>,
    /// Writes whose local NVM persist has not yet completed.
    pub unpersisted: BTreeSet<(Key, Ts)>,
    /// A `[PERSIST]sc` arrived (follower) and its `[ACK_P]sc` is owed once
    /// `unpersisted` drains.
    pub flush_requested: bool,
    /// Follower already sent its `[ACK_P]sc`.
    pub acked: bool,
}

/// The `[PERSIST]sc` transaction in flight at its coordinator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PersistTx {
    /// Client request to answer.
    pub req: ReqId,
    /// Followers whose `[ACK_P]sc` has been received.
    pub ack_ps: BTreeSet<NodeId>,
}

/// All scope state at one node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ScopeTable {
    scopes: BTreeMap<(NodeId, ScopeId), ScopeState>,
    persists: BTreeMap<(NodeId, ScopeId), PersistTx>,
}

impl ScopeTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ScopeTable::default()
    }

    /// Records that write `(key, ts)` belongs to `scope` and is not yet
    /// locally persisted.
    pub fn add_write(&mut self, owner: NodeId, scope: ScopeId, key: Key, ts: Ts) {
        let st = self.scopes.entry((owner, scope)).or_default();
        st.writes.insert((key, ts));
        st.unpersisted.insert((key, ts));
    }

    /// Marks `(key, ts)` locally persisted in whichever scope contains it.
    /// Returns the scopes that became fully persisted *and* have a pending
    /// flush request.
    pub fn mark_persisted(&mut self, key: Key, ts: Ts) -> Vec<(NodeId, ScopeId)> {
        let mut ready = Vec::new();
        for (&id, st) in &mut self.scopes {
            if st.unpersisted.remove(&(key, ts))
                && st.unpersisted.is_empty()
                && st.flush_requested
                && !st.acked
            {
                ready.push(id);
            }
        }
        ready
    }

    /// Follower side: `[PERSIST]sc` arrived. Returns `true` if the
    /// `[ACK_P]sc` can be sent immediately (nothing left to persist).
    pub fn request_flush(&mut self, owner: NodeId, scope: ScopeId) -> bool {
        let st = self.scopes.entry((owner, scope)).or_default();
        st.flush_requested = true;
        st.unpersisted.is_empty()
    }

    /// Marks the follower `[ACK_P]sc` as sent.
    pub fn mark_acked(&mut self, owner: NodeId, scope: ScopeId) {
        if let Some(st) = self.scopes.get_mut(&(owner, scope)) {
            st.acked = true;
        }
    }

    /// Whether the local writes of `scope` are all persisted.
    #[must_use]
    pub fn locally_persisted(&self, owner: NodeId, scope: ScopeId) -> bool {
        self.scopes
            .get(&(owner, scope))
            .is_none_or(|st| st.unpersisted.is_empty())
    }

    /// Coordinator side: starts the `[PERSIST]sc` transaction.
    pub fn start_persist_tx(&mut self, owner: NodeId, scope: ScopeId, req: ReqId) {
        self.persists.insert(
            (owner, scope),
            PersistTx {
                req,
                ack_ps: BTreeSet::new(),
            },
        );
    }

    /// Coordinator side: records an `[ACK_P]sc` from `from`. Returns the
    /// transaction's request id when every one of `expected` followers has
    /// acknowledged (the caller then sends `[VAL_P]sc` and completes).
    pub fn record_persist_ack(
        &mut self,
        owner: NodeId,
        scope: ScopeId,
        from: NodeId,
        expected: usize,
    ) -> Option<ReqId> {
        let tx = self.persists.get_mut(&(owner, scope))?;
        tx.ack_ps.insert(from);
        (tx.ack_ps.len() >= expected).then_some(tx.req)
    }

    /// The in-flight `[PERSIST]sc` transaction for `scope`, if any.
    #[must_use]
    pub fn persist_tx(&self, owner: NodeId, scope: ScopeId) -> Option<&PersistTx> {
        self.persists.get(&(owner, scope))
    }

    /// Books an `[ACK_P]sc` without checking completion (completion is
    /// gated by the engine's poll pass).
    pub fn persist_ack_insert(&mut self, owner: NodeId, scope: ScopeId, from: NodeId) {
        if let Some(tx) = self.persists.get_mut(&(owner, scope)) {
            tx.ack_ps.insert(from);
        }
    }

    /// Number of `[ACK_P]sc` received for `scope`.
    #[must_use]
    pub fn persist_ack_count(&self, owner: NodeId, scope: ScopeId) -> usize {
        self.persists
            .get(&(owner, scope))
            .map_or(0, |tx| tx.ack_ps.len())
    }

    /// Scopes with an in-flight `[PERSIST]sc` coordinated by `owner`.
    #[must_use]
    pub fn persist_tx_ids(&self, owner: NodeId) -> Vec<ScopeId> {
        self.persists
            .keys()
            .filter(|(o, _)| *o == owner)
            .map(|&(_, sc)| sc)
            .collect()
    }

    /// Follower side: scopes whose flush was requested, are fully
    /// persisted locally, and have not been acknowledged yet. Excludes
    /// scopes this node owns (`me`) — the owner answers through its own
    /// persist transaction, not with an `[ACK_P]sc` to itself.
    #[must_use]
    pub fn ready_to_ack(&self, me: NodeId) -> Vec<(NodeId, ScopeId)> {
        self.scopes
            .iter()
            .filter(|((owner, _), st)| {
                *owner != me && st.flush_requested && !st.acked && st.unpersisted.is_empty()
            })
            .map(|(&id, _)| id)
            .collect()
    }

    /// Ends the scope (after `[VAL_P]sc`): returns the writes it covered so
    /// the caller can raise their `glb_durableTS`.
    pub fn finish(&mut self, owner: NodeId, scope: ScopeId) -> Vec<(Key, Ts)> {
        self.persists.remove(&(owner, scope));
        self.scopes
            .remove(&(owner, scope))
            .map(|st| st.writes.into_iter().collect())
            .unwrap_or_default()
    }

    /// True when no scope or `[PERSIST]sc` state exists at this node —
    /// lets the engines skip the scope scans in their poll fixpoint.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.scopes.is_empty() && self.persists.is_empty()
    }

    /// All scope ids currently tracked (for invariant checks).
    pub fn scope_ids(&self) -> impl Iterator<Item = &(NodeId, ScopeId)> {
        self.scopes.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Key {
        Key(v)
    }
    fn ts(n: u16, v: u32) -> Ts {
        Ts::new(NodeId(n), v)
    }

    #[test]
    fn flush_waits_for_unpersisted_writes() {
        let mut t = ScopeTable::new();
        let owner = NodeId(0);
        let sc = ScopeId(1);
        t.add_write(owner, sc, k(1), ts(0, 1));
        t.add_write(owner, sc, k(2), ts(0, 1));
        assert!(!t.request_flush(owner, sc));
        assert!(t.mark_persisted(k(1), ts(0, 1)).is_empty());
        let ready = t.mark_persisted(k(2), ts(0, 1));
        assert_eq!(ready, vec![(owner, sc)]);
    }

    #[test]
    fn flush_immediate_when_nothing_pending() {
        let mut t = ScopeTable::new();
        assert!(t.request_flush(NodeId(0), ScopeId(9)));
    }

    #[test]
    fn persist_tx_counts_acks() {
        let mut t = ScopeTable::new();
        let owner = NodeId(0);
        let sc = ScopeId(2);
        t.start_persist_tx(owner, sc, ReqId(5));
        assert_eq!(t.record_persist_ack(owner, sc, NodeId(1), 2), None);
        assert_eq!(
            t.record_persist_ack(owner, sc, NodeId(2), 2),
            Some(ReqId(5))
        );
        // Duplicate acks do not double-count.
        assert_eq!(
            t.record_persist_ack(owner, sc, NodeId(2), 2),
            Some(ReqId(5))
        );
    }

    #[test]
    fn finish_returns_covered_writes() {
        let mut t = ScopeTable::new();
        let owner = NodeId(3);
        let sc = ScopeId(1);
        t.add_write(owner, sc, k(1), ts(3, 1));
        t.mark_persisted(k(1), ts(3, 1));
        let writes = t.finish(owner, sc);
        assert_eq!(writes, vec![(k(1), ts(3, 1))]);
        assert!(t.finish(owner, sc).is_empty(), "idempotent");
    }

    #[test]
    fn acked_scopes_not_reported_again() {
        let mut t = ScopeTable::new();
        let owner = NodeId(0);
        let sc = ScopeId(1);
        t.add_write(owner, sc, k(1), ts(0, 1));
        t.request_flush(owner, sc);
        let ready = t.mark_persisted(k(1), ts(0, 1));
        assert_eq!(ready.len(), 1);
        t.mark_acked(owner, sc);
        t.add_write(owner, sc, k(2), ts(0, 2));
        assert!(t.mark_persisted(k(2), ts(0, 2)).is_empty());
    }
}
