//! Inputs ([`Event`]) and outputs ([`Action`]) of the protocol engines.
//!
//! The engines are pure state machines: the embedding harness (threaded
//! cluster, discrete-event simulator, or model checker) feeds [`Event`]s
//! and executes the emitted [`Action`]s. All notions of *time* live in the
//! harness; the engine only emits [`MetaOp`] hints so the simulator can
//! charge the right latencies.

use minos_types::{Key, Message, NodeId, ScopeId, Ts, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Correlates a client request with its completion action.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An input to a MINOS-Baseline node engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// A client submits a write (the node becomes the write's Coordinator).
    ///
    /// The engine assigns `TS_WR` and emits [`Action::Defer`] with a
    /// [`Event::StartWrite`]; the gap between the two events is the race
    /// window in which a remote `INV` can make the write obsolete (the
    /// Figure 2 Line 5 / Line 10 checks).
    ClientWrite {
        /// Record to write.
        key: Key,
        /// New value.
        value: Value,
        /// Scope tag (`<Lin, Scope>` model only).
        scope: Option<ScopeId>,
        /// Request correlation id.
        req: ReqId,
    },
    /// Second phase of a client write: runs Figure 2, Lines 5–18.
    StartWrite {
        /// Record being written.
        key: Key,
        /// The timestamp issued by the earlier [`Event::ClientWrite`].
        ts: Ts,
    },
    /// A client submits a read (always satisfied locally, §III-D).
    ClientRead {
        /// Record to read.
        key: Key,
        /// Request correlation id.
        req: ReqId,
    },
    /// A client ends a scope with `[PERSIST]sc` (`<Lin, Scope>` only).
    ClientPersistScope {
        /// Scope to flush.
        scope: ScopeId,
        /// Request correlation id.
        req: ReqId,
    },
    /// A protocol message arrived from a peer.
    Message {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: Message,
    },
    /// A previously requested NVM persist completed.
    PersistDone {
        /// Record that was persisted.
        key: Key,
        /// Timestamp of the persisted write.
        ts: Ts,
    },
}

/// Which queue a deferred event should take in the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DelayClass {
    /// Local scheduling hop (e.g. handing a request to a worker thread).
    LocalDispatch,
}

/// An output of a MINOS-Baseline node engine, to be executed by the
/// embedding harness.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Send `msg` to one peer.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Message,
    },
    /// Send `msg` to every other node (the Coordinator's INV/VAL fan-out).
    ///
    /// Kept as a single action so the harness decides how the fan-out is
    /// paid for: serialized unicasts (baseline), a batched PCIe descriptor,
    /// or true broadcast (the Fig 12 ablations).
    SendToFollowers {
        /// The message.
        msg: Message,
    },
    /// Start an NVM persist of `value` for `(key, ts)`; the harness must
    /// eventually feed back [`Event::PersistDone`].
    Persist {
        /// Record being persisted.
        key: Key,
        /// Timestamp of the write.
        ts: Ts,
        /// Payload (its length drives the latency model).
        value: Value,
        /// Whether the persist is off the critical path (Figure 3: true
        /// for REnf/Event/Scope coordinators and their followers).
        background: bool,
    },
    /// Re-inject `event` after a harness-chosen delay.
    Defer {
        /// The event to re-inject.
        event: Event,
        /// Scheduling class.
        class: DelayClass,
    },
    /// The write transaction `req` has returned to the client.
    WriteDone {
        /// Request correlation id.
        req: ReqId,
        /// Record written.
        key: Key,
        /// The write's timestamp.
        ts: Ts,
        /// True if the write was cut short as obsolete (a newer write
        /// superseded it; §III-A "Outdated Writes").
        obsolete: bool,
    },
    /// The read `req` completed with `value`.
    ReadDone {
        /// Request correlation id.
        req: ReqId,
        /// Record read.
        key: Key,
        /// Value observed.
        value: Value,
        /// Version observed (the record's `volatileTS` at read time).
        ts: Ts,
    },
    /// The `[PERSIST]sc` transaction `req` completed.
    PersistScopeDone {
        /// Request correlation id.
        req: ReqId,
        /// The flushed scope.
        scope: ScopeId,
    },
    /// Partial-replication extension: this node holds no replica of the
    /// request's record; the harness should re-submit `event` at `to`.
    Redirect {
        /// A replica node that can coordinate the request.
        to: NodeId,
        /// The original client event, to resubmit verbatim.
        event: Event,
    },
    /// Timing hint: a metadata/compute step happened (the simulator charges
    /// Table III latencies for these; other harnesses ignore them).
    Meta(MetaOp),
}

/// Metadata/compute steps the simulator charges time for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetaOp {
    /// `Obsolete(TS_WR)` timestamp comparison.
    ObsoleteCheck,
    /// "Snatch RDLock" compare-and-swap.
    SnatchRdLock,
    /// RDLock release.
    RdUnlock,
    /// WRLock acquire (MINOS-B only).
    WrLockAcquire,
    /// WRLock release (MINOS-B only).
    WrLockRelease,
    /// Local volatile (LLC) record update of `bytes` bytes.
    LlcUpdate {
        /// Payload size.
        bytes: u64,
    },
    /// Timestamp metadata update (volatileTS / glb_* raise).
    TsUpdate,
}

impl Action {
    /// True for actions that complete a client-visible request.
    #[must_use]
    pub fn is_completion(&self) -> bool {
        matches!(
            self,
            Action::WriteDone { .. } | Action::ReadDone { .. } | Action::PersistScopeDone { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_are_classified() {
        let w = Action::WriteDone {
            req: ReqId(1),
            key: Key(0),
            ts: Ts::zero(),
            obsolete: false,
        };
        assert!(w.is_completion());
        assert!(!Action::Meta(MetaOp::ObsoleteCheck).is_completion());
    }

    #[test]
    fn req_id_displays() {
        assert_eq!(ReqId(7).to_string(), "r7");
    }
}
