//! The MINOS protocol engines: the paper's primary contribution.
//!
//! This crate implements, as pure deterministic state machines:
//!
//! * [`NodeEngine`] — the **MINOS-Baseline** (MINOS-B) leaderless
//!   algorithms of §III: Linearizable consistency combined with
//!   Synchronous, Strict, Read-Enforced, Eventual, or Scope persistency
//!   (Figures 2 and 3);
//! * [`ONodeEngine`] — the **MINOS-Offload** (MINOS-O) algorithms of §V:
//!   the same protocols restructured for a SmartNIC with selective
//!   host/NIC metadata coherence, batched host↔NIC descriptors, message
//!   broadcast, and WRLock elimination via vFIFO/dFIFO queues (Figures 7
//!   and 8).
//!
//! Engines consume [`Event`]s and emit [`Action`]s; *time does not exist*
//! inside them. Three harnesses embed the same engines:
//!
//! * `minos-cluster` drives them with OS threads and channels (the paper's
//!   real 5-node machine);
//! * `minos-net` drives them from a discrete-event simulator with the
//!   Table III latency model (the paper's SimGrid setup);
//! * `minos-mc` explores all their interleavings exhaustively and checks
//!   the Table I invariants (the paper's TLA+/TLC verification).
//!
//! # Example: a 3-node write quorum, hand-driven
//!
//! ```
//! use minos_core::{Action, Event, NodeEngine, ReqId};
//! use minos_types::{DdpModel, Key, Message, NodeId, PersistencyModel};
//!
//! let model = DdpModel::lin(PersistencyModel::Eventual);
//! let mut coord = NodeEngine::new(NodeId(0), 3, model);
//! let mut out = Vec::new();
//! coord.on_event(
//!     Event::ClientWrite { key: Key(1), value: "v".into(), scope: None, req: ReqId(9) },
//!     &mut out,
//! );
//! // Deliver the deferred StartWrite, collect the INV fan-out…
//! # let start = out.iter().find_map(|a| match a { Action::Defer { event, .. } => Some(event.clone()), _ => None }).unwrap();
//! # out.clear();
//! # coord.on_event(start, &mut out);
//! assert!(out.iter().any(|a| matches!(a, Action::SendToFollowers { msg: Message::Inv { .. } })));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod baseline;
mod event;
pub mod loopback;
pub mod obs;
mod offload;
pub mod runtime;
mod scope;
mod stats;
mod store;

pub use baseline::{CoordState, CoordTx, CoordTxView, FollTx, NodeEngine};
pub use event::{Action, DelayClass, Event, MetaOp, ReqId};
pub use offload::{OAction, OCoordTx, OEvent, OFollTx, ONodeEngine, PcieMsg, Side};
pub use scope::{PersistTx, ScopeState, ScopeTable};
pub use stats::EngineStats;
pub use store::Store;
