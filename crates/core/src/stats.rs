//! Per-engine protocol statistics.

use minos_types::MessageKind;
use serde::{Deserialize, Serialize};

/// Counters maintained by a protocol engine. Useful for the benches
/// (message counts explain the communication-time trends of Figure 4) and
/// for assertions in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Client writes coordinated locally.
    pub writes: u64,
    /// Client reads served locally.
    pub reads: u64,
    /// Reads that found the RDLock taken and had to stall.
    pub reads_stalled: u64,
    /// `[PERSIST]sc` transactions coordinated locally.
    pub scope_persists: u64,
    /// Client writes cut short as obsolete at the Coordinator.
    pub obsolete_coord: u64,
    /// INVs found obsolete at this Follower.
    pub obsolete_foll: u64,
    /// Successful RDLock grabs/snatches.
    pub rd_lock_snatches: u64,
    /// VAL/VAL_C/VAL_P messages discarded (their transaction had already
    /// completed via the obsolete path).
    pub vals_discarded: u64,
    /// NVM persists completed.
    pub persists_completed: u64,
    /// Messages sent, by direction.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// INV messages sent (fan-outs count once per destination).
    pub invs_sent: u64,
    /// ACK-family messages sent.
    pub acks_sent: u64,
    /// VAL-family messages sent (fan-outs count once per destination).
    pub vals_sent: u64,
}

impl EngineStats {
    /// Books one sent message of `kind`.
    pub fn record_sent(&mut self, kind: MessageKind) {
        self.msgs_sent += 1;
        self.bump_kind(kind, 1);
    }

    /// Books a fan-out of `kind` to `n` destinations.
    pub fn record_fanout(&mut self, kind: MessageKind, n: usize) {
        self.msgs_sent += n as u64;
        self.bump_kind(kind, n as u64);
    }

    /// Books one received message.
    pub fn record_received(&mut self, _kind: MessageKind) {
        self.msgs_received += 1;
    }

    fn bump_kind(&mut self, kind: MessageKind, n: u64) {
        match kind {
            MessageKind::Inv => self.invs_sent += n,
            MessageKind::Ack | MessageKind::AckC | MessageKind::AckP | MessageKind::PersistAckP => {
                self.acks_sent += n;
            }
            MessageKind::Val | MessageKind::ValC | MessageKind::ValP | MessageKind::PersistValP => {
                self.vals_sent += n
            }
            MessageKind::Persist | MessageKind::ReadReq | MessageKind::ReadResp => {}
        }
    }

    /// Accumulates another engine's counters (cluster-wide totals).
    pub fn merge(&mut self, other: &EngineStats) {
        self.writes += other.writes;
        self.reads += other.reads;
        self.reads_stalled += other.reads_stalled;
        self.scope_persists += other.scope_persists;
        self.obsolete_coord += other.obsolete_coord;
        self.obsolete_foll += other.obsolete_foll;
        self.rd_lock_snatches += other.rd_lock_snatches;
        self.vals_discarded += other.vals_discarded;
        self.persists_completed += other.persists_completed;
        self.msgs_sent += other.msgs_sent;
        self.msgs_received += other.msgs_received;
        self.invs_sent += other.invs_sent;
        self.acks_sent += other.acks_sent;
        self.vals_sent += other.vals_sent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_counts_per_destination() {
        let mut s = EngineStats::default();
        s.record_fanout(MessageKind::Inv, 4);
        assert_eq!(s.msgs_sent, 4);
        assert_eq!(s.invs_sent, 4);
    }

    #[test]
    fn ack_family_aggregates() {
        let mut s = EngineStats::default();
        s.record_sent(MessageKind::Ack);
        s.record_sent(MessageKind::AckC);
        s.record_sent(MessageKind::AckP);
        s.record_sent(MessageKind::PersistAckP);
        assert_eq!(s.acks_sent, 4);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = EngineStats {
            writes: 1,
            msgs_sent: 3,
            ..Default::default()
        };
        let b = EngineStats {
            writes: 2,
            msgs_sent: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.writes, 3);
        assert_eq!(a.msgs_sent, 8);
    }
}
