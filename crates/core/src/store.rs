//! Node-local record store shared by the baseline and offload engines.

use minos_types::{Key, NodeId, Record, RecordMeta, ShardMap, Ts, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The volatile, node-local view of every record plus timestamp-issuing
/// state.
///
/// Records are created lazily with zeroed metadata and an empty value, so a
/// cluster does not need a loading phase; `minos-kv` pre-populates the
/// store for YCSB-style workloads.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Store {
    records: BTreeMap<Key, Record>,
    /// Highest version this node has issued per key. The paper issues
    /// `volatileTS.version + 1`; two back-to-back client-writes at the same
    /// node could then collide, so we additionally floor on the last
    /// locally-issued version (documented in DESIGN.md §1).
    last_issued: BTreeMap<Key, u32>,
}

impl Store {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Store::default()
    }

    /// Pre-populates `key` with `value` (metadata zeroed).
    pub fn load(&mut self, key: Key, value: Value) {
        self.records.insert(key, Record::new(key, value));
    }

    /// Read-only access to a record's metadata (zeroed default if the
    /// record has never been touched).
    #[must_use]
    pub fn meta(&self, key: Key) -> RecordMeta {
        self.records.get(&key).map(|r| r.meta).unwrap_or_default()
    }

    /// Mutable access to a record, creating it lazily.
    pub fn record_mut(&mut self, key: Key) -> &mut Record {
        self.records
            .entry(key)
            .or_insert_with(|| Record::new(key, Value::new()))
    }

    /// Read-only access to a record, if present.
    #[must_use]
    pub fn record(&self, key: Key) -> Option<&Record> {
        self.records.get(&key)
    }

    /// Issues a fresh `TS_WR` for a client-write at `node` (§III-A), with
    /// the local-monotonicity floor described above.
    pub fn issue_ts(&mut self, key: Key, node: NodeId) -> Ts {
        let cur = self.meta(key).volatile_ts.version;
        let floor = self.last_issued.get(&key).copied().unwrap_or(0);
        let version = cur.max(floor) + 1;
        self.last_issued.insert(key, version);
        Ts::new(node, version)
    }

    /// Applies a local-write: raises `volatileTS` and stores the value.
    /// Callers must have passed the obsoleteness check.
    pub fn apply_local_write(&mut self, key: Key, ts: Ts, value: Value) {
        let rec = self.record_mut(key);
        rec.meta.raise_volatile(ts);
        rec.value = value;
    }

    /// Iterates over all records (used by recovery and invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Record)> {
        self.records.iter()
    }

    /// Records whose metadata currently holds an RDLock or WRLock — the
    /// lock-table-size resource gauge
    /// ([`GaugeKind::LockTableSize`](crate::obs::GaugeKind)).
    #[must_use]
    pub fn locked_records(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.meta.rd_lock_owner.is_some() || r.meta.wr_lock)
            .count()
    }

    /// Locked records grouped by the shard each key hashes to under
    /// `map`; shards with no locked records are omitted.
    #[must_use]
    pub fn locked_records_by_shard(&self, map: &ShardMap) -> BTreeMap<u32, usize> {
        let mut by_shard = BTreeMap::new();
        for (key, r) in &self.records {
            if r.meta.rd_lock_owner.is_some() || r.meta.wr_lock {
                *by_shard.entry(map.shard_of(*key).0).or_insert(0) += 1;
            }
        }
        by_shard
    }

    /// Number of materialized records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record has been materialized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn issue_ts_increments_from_volatile() {
        let mut s = Store::new();
        let t1 = s.issue_ts(Key(1), NodeId(2));
        assert_eq!(t1, Ts::new(NodeId(2), 1));
    }

    #[test]
    fn issue_ts_never_repeats_locally() {
        let mut s = Store::new();
        let t1 = s.issue_ts(Key(1), NodeId(0));
        let t2 = s.issue_ts(Key(1), NodeId(0));
        assert!(t2 > t1, "{t2} must be newer than {t1}");
    }

    #[test]
    fn issue_ts_respects_remote_updates() {
        let mut s = Store::new();
        s.apply_local_write(Key(1), Ts::new(NodeId(4), 9), Bytes::from_static(b"x"));
        let t = s.issue_ts(Key(1), NodeId(0));
        assert_eq!(t.version, 10);
    }

    #[test]
    fn apply_local_write_is_monotone() {
        let mut s = Store::new();
        s.apply_local_write(Key(1), Ts::new(NodeId(1), 5), Bytes::from_static(b"new"));
        // An older write slipping through must not regress volatileTS.
        s.apply_local_write(Key(1), Ts::new(NodeId(0), 4), Bytes::from_static(b"old"));
        assert_eq!(s.meta(Key(1)).volatile_ts, Ts::new(NodeId(1), 5));
    }

    #[test]
    fn lazy_records_have_zero_meta() {
        let s = Store::new();
        assert_eq!(s.meta(Key(77)), RecordMeta::default());
        assert!(s.is_empty());
    }

    #[test]
    fn load_prepopulates() {
        let mut s = Store::new();
        s.load(Key(3), Bytes::from_static(b"v"));
        assert_eq!(s.record(Key(3)).unwrap().value, Bytes::from_static(b"v"));
        assert_eq!(s.len(), 1);
    }
}
