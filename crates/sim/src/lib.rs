//! A deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the workspace's SimGrid substitute (DESIGN.md §1): a
//! minimal, fully deterministic toolkit from which `minos-net` builds its
//! simulated distributed machine:
//!
//! * [`EventQueue`] — the time-ordered event heap at the heart of any DES;
//! * [`Resource`] — a serializing server (a link, a DMA engine, an NVM
//!   write port) that turns "this takes X ns and only one can run at a
//!   time" into completion timestamps;
//! * [`CorePool`] — N-server variant for multi-core hosts and SmartNICs;
//! * [`BoundedFifo`] — an occupancy model for the MINOS-O vFIFO/dFIFO
//!   queues, with backpressure when full;
//! * [`LatencyStats`] — streaming summaries (mean/percentiles) for the
//!   benchmark harness.
//!
//! Everything is in integer nanoseconds ([`Time`]); ties are broken by
//! insertion order, so runs are bit-for-bit reproducible.
//!
//! # Example
//!
//! ```
//! use minos_sim::{EventQueue, Resource};
//!
//! let mut q = EventQueue::new();
//! q.schedule(10, "b");
//! q.schedule(5, "a");
//! q.schedule(10, "c"); // same time as "b": FIFO tie-break
//! let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, ["a", "b", "c"]);
//!
//! let mut link = Resource::new();
//! let d1 = link.acquire(0, 100); // busy 0..100
//! let d2 = link.acquire(20, 50); // must wait: busy 100..150
//! assert_eq!((d1, d2), (100, 150));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fifo;
mod queue;
mod resource;
mod stats;

pub use fifo::BoundedFifo;
pub use queue::{EventQueue, HeapEventQueue};
pub use resource::{CorePool, DepthTracker, Resource};
pub use stats::LatencyStats;

/// Simulated time, in nanoseconds since the start of the run.
pub type Time = u64;
