//! Latency statistics for the benchmark harness.

use crate::Time;
use serde::{Deserialize, Serialize};

/// A latency recorder with exact percentiles (samples are retained; the
/// experiments record at most a few hundred thousand points).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<Time>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, v: Time) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// The `q`-quantile (0.0–1.0) by nearest-rank; 0 when empty.
    #[must_use]
    pub fn quantile(&mut self, q: f64) -> Time {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((self.samples.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.samples[rank]
    }

    /// Median.
    #[must_use]
    pub fn p50(&mut self) -> Time {
        self.quantile(0.50)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&mut self) -> Time {
        self.quantile(0.99)
    }

    /// Maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> Time {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Minimum sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> Time {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(vals: &[Time]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for &v in vals {
            s.record(v);
        }
        s
    }

    #[test]
    fn mean_of_known_samples() {
        let s = filled(&[10, 20, 30]);
        assert!((s.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_exact_on_small_sets() {
        let mut s = filled(&[5, 1, 3, 2, 4]);
        assert_eq!(s.p50(), 3);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 5);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a = filled(&[1, 2]);
        let b = filled(&[3, 4]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 4);
    }

    #[test]
    fn recording_after_quantile_resorts() {
        let mut s = filled(&[10, 20]);
        let _ = s.p50();
        s.record(1);
        assert_eq!(s.quantile(0.0), 1);
    }
}
