//! Bounded-FIFO occupancy model for the MINOS-O vFIFO/dFIFO.

use crate::{Resource, Time};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Outcome of enqueueing into a [`BoundedFifo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FifoOutcome {
    /// When the writer obtained a slot (equals the request time unless the
    /// FIFO was full — backpressure).
    pub slot_at: Time,
    /// When the entry finished being written into the FIFO (the write is
    /// *durable* at this point for the dFIFO).
    pub enqueued_at: Time,
    /// When the hardware finished draining the entry (to the host LLC for
    /// the vFIFO, to the host NVM log for the dFIFO).
    pub drained_at: Time,
}

/// Occupancy model of a bounded hardware FIFO with a drain engine.
///
/// An entry occupies a slot from the moment its write begins until its
/// drain completes. When all `capacity` slots are busy, a new enqueue
/// stalls until the oldest entry drains — this is the backpressure that
/// the Figure 13 sensitivity sweep measures. `capacity = None` models the
/// paper's "unlimited entries" reference bar.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BoundedFifo {
    capacity: Option<usize>,
    /// Drain-completion times of entries currently occupying slots
    /// (min-heap via `Reverse` ordering).
    occupied: BinaryHeap<std::cmp::Reverse<Time>>,
    /// Serializes drains when `parallel_drain` is false.
    drain_engine: Resource,
    /// §V-B-4: "Dequeueing can be done in parallel for updates to
    /// different records" — when true (the MINOS-O configuration), each
    /// entry drains independently and only slot occupancy limits
    /// parallelism.
    parallel_drain: bool,
}

impl BoundedFifo {
    /// Creates a FIFO with `capacity` slots (`None` = unbounded) and
    /// parallel drains (the MINOS-O hardware).
    #[must_use]
    pub fn new(capacity: Option<usize>) -> Self {
        BoundedFifo {
            capacity,
            occupied: BinaryHeap::new(),
            drain_engine: Resource::new(),
            parallel_drain: true,
        }
    }

    /// Creates a FIFO whose head drains one entry at a time.
    #[must_use]
    pub fn new_serial(capacity: Option<usize>) -> Self {
        BoundedFifo {
            parallel_drain: false,
            ..BoundedFifo::new(capacity)
        }
    }

    /// Enqueues an entry at time `now`. The write into the FIFO takes
    /// `write_latency`; the later drain takes `drain_latency`.
    pub fn enqueue(&mut self, now: Time, write_latency: Time, drain_latency: Time) -> FifoOutcome {
        // Backpressure: wait for a slot if the FIFO is full.
        let slot_at = match self.capacity {
            Some(cap) if self.occupied.len() >= cap => {
                // Pop drained entries that have already freed their slots.
                let mut t = now;
                while self.occupied.len() >= cap {
                    let std::cmp::Reverse(freed) =
                        self.occupied.pop().expect("len >= cap > 0 entries");
                    t = t.max(freed);
                }
                t
            }
            _ => now,
        };
        // Also retire any entries that drained before `slot_at`, keeping
        // the heap small on long runs.
        while let Some(&std::cmp::Reverse(fr)) = self.occupied.peek() {
            if fr <= slot_at {
                self.occupied.pop();
            } else {
                break;
            }
        }

        let enqueued_at = slot_at + write_latency;
        let drained_at = if self.parallel_drain {
            enqueued_at + drain_latency
        } else {
            self.drain_engine.acquire(enqueued_at, drain_latency)
        };
        self.occupied.push(std::cmp::Reverse(drained_at));
        FifoOutcome {
            slot_at,
            enqueued_at,
            drained_at,
        }
    }

    /// Entries whose drains have not completed by `now`.
    #[must_use]
    pub fn occupancy(&self, now: Time) -> usize {
        self.occupied
            .iter()
            .filter(|std::cmp::Reverse(t)| *t > now)
            .count()
    }

    /// The configured capacity (`None` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo_never_backpressures() {
        let mut f = BoundedFifo::new(None);
        for i in 0..100 {
            let o = f.enqueue(i, 10, 1000);
            assert_eq!(o.slot_at, i, "no stall expected");
        }
    }

    #[test]
    fn single_entry_fifo_serializes_writes() {
        let mut f = BoundedFifo::new(Some(1));
        let a = f.enqueue(0, 10, 100);
        assert_eq!(a.slot_at, 0);
        assert_eq!(a.enqueued_at, 10);
        assert_eq!(a.drained_at, 110);
        // The second entry cannot take the slot until the first drains.
        let b = f.enqueue(0, 10, 100);
        assert_eq!(b.slot_at, 110);
        assert_eq!(b.drained_at, 220);
    }

    #[test]
    fn deep_fifo_absorbs_bursts() {
        let mut shallow = BoundedFifo::new(Some(1));
        let mut deep = BoundedFifo::new(Some(8));
        let mut last_shallow = 0;
        let mut last_deep = 0;
        for _ in 0..8 {
            last_shallow = shallow.enqueue(0, 10, 100).enqueued_at;
            last_deep = deep.enqueue(0, 10, 100).enqueued_at;
        }
        assert!(
            last_deep < last_shallow,
            "deeper FIFO must absorb the burst: {last_deep} vs {last_shallow}"
        );
    }

    #[test]
    fn parallel_drains_overlap() {
        let mut f = BoundedFifo::new(Some(10));
        let a = f.enqueue(0, 0, 100);
        let b = f.enqueue(0, 0, 100);
        assert_eq!(a.drained_at, 100);
        assert_eq!(b.drained_at, 100, "different records drain in parallel");
    }

    #[test]
    fn serial_drains_queue_behind_each_other() {
        let mut f = BoundedFifo::new_serial(Some(10));
        let a = f.enqueue(0, 0, 100);
        let b = f.enqueue(0, 0, 100);
        assert_eq!(a.drained_at, 100);
        assert_eq!(b.drained_at, 200, "head-of-queue drain order");
    }

    #[test]
    fn occupancy_reflects_in_flight_entries() {
        let mut f = BoundedFifo::new_serial(Some(4));
        f.enqueue(0, 0, 100);
        f.enqueue(0, 0, 100); // serial drain: done at 200
        assert_eq!(f.occupancy(50), 2);
        assert_eq!(f.occupancy(150), 1);
        assert_eq!(f.occupancy(500), 0);
    }

    #[test]
    fn occupancy_with_parallel_drains() {
        let mut f = BoundedFifo::new(Some(4));
        f.enqueue(0, 0, 100);
        f.enqueue(0, 0, 100); // parallel drain: both done at 100
        assert_eq!(f.occupancy(50), 2);
        assert_eq!(f.occupancy(150), 0);
    }

    #[test]
    fn bounded_matches_unbounded_when_load_is_light() {
        let mut bounded = BoundedFifo::new(Some(5));
        let mut unbounded = BoundedFifo::new(None);
        // Arrivals spaced wider than the drain time: no queueing at all.
        for i in 0..20u64 {
            let t = i * 1000;
            let b = bounded.enqueue(t, 10, 100);
            let u = unbounded.enqueue(t, 10, 100);
            assert_eq!(b, u);
        }
    }
}
