//! The time-ordered event scheduler.
//!
//! Two implementations share one contract — pop in ascending `(time,
//! seq)` order, where `seq` is the insertion number and scheduling in
//! the past clamps to `now`:
//!
//! * [`EventQueue`] — a calendar queue (bucketed timing wheel) with an
//!   event arena. O(1) amortized schedule/pop for the dense, near-future
//!   traffic a protocol simulation generates, with a spill heap for
//!   far-future events (pre-scheduled open-loop arrivals).
//! * [`HeapEventQueue`] — the original binary-heap scheduler, kept as
//!   the reference implementation; the differential proptest in
//!   `tests/` holds the two to identical pop sequences.

use crate::Time;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Number of wheel buckets. Power of two so day→bucket is a mask.
const NB: usize = 4096;
/// log2 of the bucket width in time units (ns): buckets are 1 µs wide,
/// so the wheel spans ~4.2 ms — comfortably past the hop/persist
/// latencies that dominate in-window scheduling.
const SHIFT: u32 = 10;
const MASK: u64 = (NB as u64) - 1;
/// Occupancy bitmap words (NB bits).
const WORDS: usize = NB / 64;

/// A bucket entry; the payload lives in the arena at `slot`.
#[derive(Clone, Copy)]
struct Slot {
    time: Time,
    seq: u64,
    slot: u32,
}

/// One wheel bucket: entries sorted ascending by `(time, seq)`, with a
/// consumed prefix `[..pos]`. The common append (new maximum) and the
/// common pop (front of the live suffix) are both O(1); only an
/// out-of-order insert inside one 1 µs bucket pays a shift.
#[derive(Default)]
struct Bucket {
    entries: Vec<Slot>,
    pos: usize,
}

impl Bucket {
    fn live(&self) -> bool {
        self.pos < self.entries.len()
    }

    fn insert(&mut self, e: Slot) {
        if self
            .entries
            .last()
            .is_none_or(|l| (l.time, l.seq) < (e.time, e.seq))
        {
            self.entries.push(e);
        } else {
            let at = self.entries[self.pos..]
                .partition_point(|s| (s.time, s.seq) < (e.time, e.seq))
                + self.pos;
            self.entries.insert(at, e);
        }
    }

    fn front(&self) -> Option<&Slot> {
        self.entries.get(self.pos)
    }

    fn take_front(&mut self) -> Slot {
        let e = self.entries[self.pos];
        self.pos += 1;
        if self.pos == self.entries.len() {
            self.entries.clear();
            self.pos = 0;
        }
        e
    }
}

/// A deterministic time-ordered event queue (calendar queue).
///
/// Events scheduled for the same instant pop in insertion order, making
/// whole-simulation runs reproducible regardless of payload type. The
/// pop sequence is bit-identical to [`HeapEventQueue`]'s.
///
/// Layout: payloads live in a slab arena (`Vec<Option<E>>` plus a
/// freelist) so bucket entries are small `Copy` triples and a
/// schedule/pop cycle recycles its slot instead of allocating. Events
/// within the wheel's window land in per-µs buckets found through a
/// 4096-bit occupancy bitmap; events past the window wait in a spill
/// heap and migrate into the wheel when it drains (pops are monotone in
/// time, so the window only ever moves forward, and it only needs to
/// move when the wheel is empty or an insert lands past the horizon).
pub struct EventQueue<E> {
    buckets: Vec<Bucket>,
    occ: [u64; WORDS],
    /// First day (time >> SHIFT) of the wheel's window `[base_day,
    /// base_day + NB)`.
    base_day: u64,
    in_wheel: usize,
    /// Events whose day falls past the window horizon.
    overflow: BinaryHeap<Reverse<(Time, u64, u32)>>,
    /// Payload arena; `free` lists vacant slots.
    arena: Vec<Option<E>>,
    free: Vec<u32>,
    seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NB).map(|_| Bucket::default()).collect(),
            occ: [0; WORDS],
            base_day: 0,
            in_wheel: 0,
            overflow: BinaryHeap::new(),
            arena: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// The time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` (a zero-latency hop
    /// cannot reorder before already-processed events).
    pub fn schedule(&mut self, at: Time, payload: E) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.arena[s as usize] = Some(payload);
                s
            }
            None => {
                self.arena.push(Some(payload));
                (self.arena.len() - 1) as u32
            }
        };
        self.place(Slot { time, seq, slot });
    }

    /// Schedules `payload` at `now + delay`.
    pub fn schedule_in(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    fn place(&mut self, e: Slot) {
        let mut day = e.time >> SHIFT;
        if day >= self.base_day + NB as u64 {
            // Past the horizon. Every bucket below now's day is already
            // drained (pops are monotone), so the window may slide up to
            // there — or, if the wheel is empty, straight to the
            // earliest pending day. Only if the event is still beyond
            // the advanced horizon does it spill.
            let ovf_day = self.overflow.peek().map(|&Reverse((t, _, _))| t >> SHIFT);
            let target = if self.in_wheel == 0 {
                ovf_day.map_or(day, |o| o.min(day))
            } else {
                (self.now >> SHIFT).max(self.base_day)
            };
            if target > self.base_day {
                self.rebase(target);
            }
            if day >= self.base_day + NB as u64 {
                self.overflow.push(Reverse((e.time, e.seq, e.slot)));
                return;
            }
        } else if day < self.base_day {
            // Clamped into a window that has already moved on (only
            // possible right after a rebase past `now`): fold into the
            // window's first bucket. Ordering stays correct — folded
            // times are below every other window time and the bucket
            // itself orders by (time, seq).
            day = self.base_day;
        }
        self.wheel_insert(day, e);
    }

    fn wheel_insert(&mut self, day: u64, e: Slot) {
        let idx = (day & MASK) as usize;
        self.buckets[idx].insert(e);
        self.occ[idx >> 6] |= 1u64 << (idx & 63);
        self.in_wheel += 1;
    }

    /// Slides the window forward to `[new_base, new_base + NB)` and
    /// pulls spilled events that now fall inside it onto the wheel,
    /// restoring the invariant that the spill heap holds only events
    /// past the horizon. Callers guarantee every bucket below
    /// `new_base` is empty.
    fn rebase(&mut self, new_base: u64) {
        self.base_day = new_base;
        let horizon = new_base + NB as u64;
        while let Some(&Reverse((time, seq, slot))) = self.overflow.peek() {
            if time >> SHIFT >= horizon {
                break;
            }
            self.overflow.pop();
            self.wheel_insert(time >> SHIFT, Slot { time, seq, slot });
        }
    }

    /// Wheel empty but spill heap not: slide the window to the earliest
    /// spilled event.
    fn migrate_overflow(&mut self) {
        if let Some(&Reverse((t, _, _))) = self.overflow.peek() {
            self.rebase(t >> SHIFT);
        }
    }

    /// Bitmap scan for the first live bucket at or after `from_day`.
    fn first_live(&self, from_day: u64) -> Option<usize> {
        let horizon = self.base_day + NB as u64;
        let mut day = from_day.max(self.base_day);
        while day < horizon {
            let idx = (day & MASK) as usize;
            let (w, b) = (idx >> 6, idx & 63);
            // Scan whole bitmap words: consecutive days share a word
            // until the word boundary (or the horizon) — recomputing
            // idx from day each iteration handles the ring wrap.
            let span = (64 - b as u64).min(horizon - day);
            let mask = if span == 64 {
                !0u64
            } else {
                ((1u64 << span) - 1) << b
            };
            let hit = self.occ[w] & mask;
            if hit != 0 {
                let bit = hit.trailing_zeros() as usize;
                return Some((w << 6) | bit);
            }
            day += span;
        }
        None
    }

    fn wheel_front(&self) -> Option<usize> {
        if self.in_wheel == 0 {
            return None;
        }
        self.first_live(self.now >> SHIFT)
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.in_wheel == 0 && !self.overflow.is_empty() {
            self.migrate_overflow();
        }
        let idx = self.wheel_front()?;
        let e = self.buckets[idx].take_front();
        if !self.buckets[idx].live() {
            self.occ[idx >> 6] &= !(1u64 << (idx & 63));
        }
        self.in_wheel -= 1;
        self.now = e.time;
        let payload = self.arena[e.slot as usize]
            .take()
            .expect("arena slot vacated while queued");
        self.free.push(e.slot);
        Some((e.time, payload))
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Time> {
        match self.wheel_front() {
            Some(idx) => self.buckets[idx].front().map(|s| s.time),
            // Wheel empty: the spill heap holds the minimum (its events
            // are all past the wheel's horizon by construction).
            None => self.overflow.peek().map(|&Reverse((t, _, _))| t),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.in_wheel + self.overflow.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("in_wheel", &self.in_wheel)
            .field("base_day", &self.base_day)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------

struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The original binary-heap event queue: the reference the calendar
/// queue is differentially tested against.
#[derive(Default)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// The time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `payload` at absolute time `at` (past clamps to `now`).
    pub fn schedule(&mut self, at: Time, payload: E) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules `payload` at `now + delay`.
    pub fn schedule_in(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(50, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 50);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "late");
        q.pop();
        q.schedule(10, "early"); // in the past
        assert_eq!(q.pop(), Some((100, "early")));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(40, "a");
        q.pop();
        q.schedule_in(5, "b");
        assert_eq!(q.pop(), Some((45, "b")));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(1));
    }

    #[test]
    fn far_future_events_spill_and_return() {
        let mut q = EventQueue::new();
        // One per wheel-window (~4.2 ms): all but the first overflow.
        let span = (NB as u64) << SHIFT;
        for i in 0..20u64 {
            q.schedule(i * span + 5, i);
        }
        assert_eq!(q.len(), 20);
        for i in 0..20u64 {
            assert_eq!(q.pop(), Some((i * span + 5, i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_near_and_far() {
        let mut q = EventQueue::new();
        let far = (NB as u64) << (SHIFT + 2);
        q.schedule(far, "far");
        q.schedule(3, "near");
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop(), Some((3, "near")));
        // After the near event, inserts beyond the original horizon
        // still order correctly against the spilled one.
        q.schedule(far - 1, "mid");
        assert_eq!(q.pop(), Some((far - 1, "mid")));
        assert_eq!(q.pop(), Some((far, "far")));
    }

    #[test]
    fn bucket_boundary_ordering() {
        let mut q = EventQueue::new();
        let w = 1u64 << SHIFT;
        // Straddle a bucket boundary in reverse order.
        q.schedule(w, "b");
        q.schedule(w - 1, "a");
        q.schedule(w + 1, "c");
        assert_eq!(q.pop(), Some((w - 1, "a")));
        assert_eq!(q.pop(), Some((w, "b")));
        assert_eq!(q.pop(), Some((w + 1, "c")));
    }

    #[test]
    fn arena_slots_recycle() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            q.schedule(round, round);
            assert_eq!(q.pop(), Some((round, round)));
        }
        // One live event at a time → the arena never grew past 1 slot.
        assert!(q.arena.len() <= 2, "arena len {}", q.arena.len());
    }
}
