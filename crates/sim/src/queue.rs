//! The time-ordered event heap.

use crate::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same instant pop in insertion order, making
/// whole-simulation runs reproducible regardless of payload type.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// The time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` (a zero-latency hop
    /// cannot reorder before already-processed events).
    pub fn schedule(&mut self, at: Time, payload: E) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules `payload` at `now + delay`.
    pub fn schedule_in(&mut self, delay: Time, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(50, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 50);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "late");
        q.pop();
        q.schedule(10, "early"); // in the past
        assert_eq!(q.pop(), Some((100, "early")));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(40, "a");
        q.pop();
        q.schedule_in(5, "b");
        assert_eq!(q.pop(), Some((45, "b")));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(1));
    }
}
