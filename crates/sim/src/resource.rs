//! Serializing resources: single-server and N-server occupancy models.

use crate::Time;
use serde::{Deserialize, Serialize};

/// A single-server serializing resource.
///
/// Models anything that processes one job at a time — a network link's
/// serialization, a NIC send engine, an NVM write port. `acquire(now, d)`
/// starts the job at `max(now, next_free)` and returns its completion
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Resource {
    next_free: Time,
}

impl Resource {
    /// A resource that is free at time zero.
    #[must_use]
    pub fn new() -> Self {
        Resource::default()
    }

    /// Occupies the resource for `duration` starting no earlier than
    /// `now`; returns the completion time.
    pub fn acquire(&mut self, now: Time, duration: Time) -> Time {
        let start = now.max(self.next_free);
        self.next_free = start + duration;
        self.next_free
    }

    /// When the resource next becomes free.
    #[must_use]
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Fraction-free check used by admission control: whether a job
    /// arriving at `now` would start immediately.
    #[must_use]
    pub fn idle_at(&self, now: Time) -> bool {
        self.next_free <= now
    }
}

/// An N-server resource: jobs start on the earliest-free server.
///
/// Models a pool of host or SmartNIC cores: the paper's hosts keep 5 cores
/// busy and the BlueField-derived SmartNIC has 8.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CorePool {
    cores: Vec<Time>,
}

impl CorePool {
    /// Creates a pool of `n` cores, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a pool needs at least one core");
        CorePool { cores: vec![0; n] }
    }

    /// Number of cores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Always false (the constructor requires n > 0); present for
    /// `len`/`is_empty` pairing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Runs a `duration`-long job on the earliest-available core starting
    /// no earlier than `now`; returns the completion time.
    pub fn acquire(&mut self, now: Time, duration: Time) -> Time {
        let idx = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        let start = now.max(self.cores[idx]);
        self.cores[idx] = start + duration;
        self.cores[idx]
    }

    /// Number of cores that would be idle at `now`.
    #[must_use]
    pub fn idle_cores(&self, now: Time) -> usize {
        self.cores.iter().filter(|&&t| t <= now).count()
    }
}

/// Queue-depth companion for a [`Resource`].
///
/// [`Resource`] itself stores only its next-free time (it is `Copy` and
/// embedded all over the simulators), so it cannot answer "how many jobs
/// are waiting right now?" — the send-queue-depth telemetry gauge.
/// Harnesses that want depth pair the resource with a tracker: record
/// each [`Resource::acquire`] completion time with
/// [`on_acquire`](DepthTracker::on_acquire) and sample
/// [`depth`](DepthTracker::depth) on the telemetry tick. A serializing
/// resource completes jobs in acquisition order, so completion times
/// arrive monotonically and the tracker prunes from the front.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DepthTracker {
    completions: std::collections::VecDeque<Time>,
}

impl DepthTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        DepthTracker::default()
    }

    /// Records a job that will complete at `completes_at`.
    pub fn on_acquire(&mut self, completes_at: Time) {
        self.completions.push_back(completes_at);
    }

    /// Jobs acquired but not yet completed at `now`; prunes completed
    /// entries as a side effect.
    pub fn depth(&mut self, now: Time) -> usize {
        while matches!(self.completions.front(), Some(&t) if t <= now) {
            self.completions.pop_front();
        }
        self.completions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_serializes_back_to_back() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0, 100), 100);
        assert_eq!(r.acquire(0, 100), 200);
        assert_eq!(r.acquire(500, 100), 600, "idle gap honored");
    }

    #[test]
    fn resource_idle_check() {
        let mut r = Resource::new();
        r.acquire(0, 100);
        assert!(!r.idle_at(50));
        assert!(r.idle_at(100));
    }

    #[test]
    fn pool_runs_jobs_in_parallel_up_to_width() {
        let mut p = CorePool::new(2);
        assert_eq!(p.acquire(0, 100), 100);
        assert_eq!(p.acquire(0, 100), 100, "second core in parallel");
        assert_eq!(p.acquire(0, 100), 200, "third job queues");
    }

    #[test]
    fn pool_counts_idle_cores() {
        let mut p = CorePool::new(3);
        p.acquire(0, 50);
        assert_eq!(p.idle_cores(0), 2);
        assert_eq!(p.idle_cores(50), 3);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_pool_panics() {
        let _ = CorePool::new(0);
    }

    #[test]
    fn depth_tracker_follows_resource_backlog() {
        let mut r = Resource::new();
        let mut d = DepthTracker::new();
        for _ in 0..3 {
            d.on_acquire(r.acquire(0, 100));
        }
        assert_eq!(d.depth(0), 3);
        assert_eq!(d.depth(100), 2, "first job done");
        assert_eq!(d.depth(250), 1);
        assert_eq!(d.depth(300), 0);
        assert_eq!(d.depth(1000), 0);
    }
}
