//! Property-based tests of the DES kernel invariants.

use minos_sim::{BoundedFifo, CorePool, EventQueue, LatencyStats, Resource};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn event_queue_preserves_fifo_within_a_timestamp(
        n in 1usize..100
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(42, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn resource_never_overlaps_jobs(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let mut r = Resource::new();
        let mut prev_end = 0u64;
        // Jobs submitted in arrival order: completions must be
        // nondecreasing and each job takes at least its duration.
        let mut sorted = jobs.clone();
        sorted.sort_unstable();
        for (arrive, dur) in sorted {
            let end = r.acquire(arrive, dur);
            prop_assert!(end >= arrive + dur);
            prop_assert!(end >= prev_end + dur);
            prev_end = end;
        }
    }

    #[test]
    fn core_pool_beats_single_resource(
        jobs in proptest::collection::vec(1u64..500, 2..50)
    ) {
        // An N-core pool must finish a batch no later than one core.
        let mut pool = CorePool::new(4);
        let mut single = Resource::new();
        let mut pool_last = 0;
        let mut single_last = 0;
        for &d in &jobs {
            pool_last = pool_last.max(pool.acquire(0, d));
            single_last = single_last.max(single.acquire(0, d));
        }
        prop_assert!(pool_last <= single_last);
    }

    #[test]
    fn bounded_fifo_outcomes_are_ordered(
        arrivals in proptest::collection::vec(0u64..100_000, 1..100),
        cap in 1usize..8,
        write in 1u64..2_000,
        drain in 0u64..3_000,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut f = BoundedFifo::new(Some(cap));
        for t in sorted {
            let o = f.enqueue(t, write, drain);
            prop_assert!(o.slot_at >= t);
            prop_assert_eq!(o.enqueued_at, o.slot_at + write);
            prop_assert!(o.drained_at >= o.enqueued_at + drain);
        }
    }

    #[test]
    fn bounded_fifo_never_exceeds_capacity(
        arrivals in proptest::collection::vec(0u64..10_000, 1..100),
        cap in 1usize..6,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut f = BoundedFifo::new(Some(cap));
        for t in sorted {
            let o = f.enqueue(t, 100, 500);
            // Occupancy measured just after the slot grant never exceeds
            // the configured capacity.
            prop_assert!(f.occupancy(o.slot_at) <= cap, "over capacity");
        }
    }

    #[test]
    fn latency_stats_quantiles_are_order_statistics(
        samples in proptest::collection::vec(0u64..1_000_000, 1..500)
    ) {
        let mut s = LatencyStats::new();
        for &v in &samples {
            s.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(s.quantile(0.0), sorted[0]);
        prop_assert_eq!(s.quantile(1.0), *sorted.last().unwrap());
        prop_assert_eq!(s.min(), sorted[0]);
        prop_assert_eq!(s.max(), *sorted.last().unwrap());
        let mean = s.mean();
        prop_assert!(mean >= sorted[0] as f64 && mean <= *sorted.last().unwrap() as f64);
    }
}
