//! Differential property tests: the calendar queue ([`EventQueue`])
//! must pop in *exactly* the same order as the binary-heap reference
//! ([`HeapEventQueue`]) — same `(time, payload)` stream, same
//! `peek_time`, same `len` — for arbitrary interleavings of schedules
//! and pops, including same-instant ties, bucket-width boundaries, and
//! schedules spanning the wheel's horizon into the spill heap.

use minos_sim::{EventQueue, HeapEventQueue};
use proptest::prelude::*;

/// Bucket width (2^10 ns) and wheel span (4096 buckets) of the calendar
/// queue; the generators below aim offsets at these edges on purpose.
const BUCKET: u64 = 1 << 10;
const WHEEL_SPAN: u64 = 4096 * BUCKET;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + delta` (0 ⇒ same-instant tie with the event
    /// that set `now`).
    Schedule(u64),
    /// Schedule at an absolute time, possibly in the past (both
    /// implementations clamp to `now`).
    ScheduleAbs(u64),
    Pop,
}

fn delta_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Dense near-future traffic — the hot path.
        0u64..4 * BUCKET,
        // Exactly on / around bucket boundaries.
        (0u64..8).prop_map(|k| k * BUCKET),
        (1u64..8).prop_map(|k| k * BUCKET - 1),
        (0u64..8).prop_map(|k| k * BUCKET + 1),
        // Around the wheel horizon: forces spills and migrations.
        (WHEEL_SPAN - 2 * BUCKET)..(WHEEL_SPAN + 2 * BUCKET),
        // Deep future: lives in the spill heap for many rebases.
        (2 * WHEEL_SPAN)..(20 * WHEEL_SPAN),
    ]
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            delta_strategy().prop_map(Op::Schedule),
            delta_strategy().prop_map(Op::Schedule),
            (0u64..4 * WHEEL_SPAN).prop_map(Op::ScheduleAbs),
            Just(Op::Pop),
            Just(Op::Pop),
        ],
        1..400,
    )
}

fn run_differential(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut cal: EventQueue<u32> = EventQueue::new();
    let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
    for (i, op) in ops.iter().enumerate() {
        let payload = i as u32;
        match *op {
            Op::Schedule(delta) => {
                cal.schedule_in(delta, payload);
                heap.schedule_in(delta, payload);
            }
            Op::ScheduleAbs(at) => {
                cal.schedule(at, payload);
                heap.schedule(at, payload);
            }
            Op::Pop => {
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
                prop_assert_eq!(cal.pop(), heap.pop());
                prop_assert_eq!(cal.now(), heap.now());
            }
        }
        prop_assert_eq!(cal.len(), heap.len());
    }
    // Drain both: every remaining event must match too.
    loop {
        prop_assert_eq!(cal.peek_time(), heap.peek_time());
        let (c, h) = (cal.pop(), heap.pop());
        prop_assert_eq!(c, h);
        if c.is_none() {
            break;
        }
    }
    prop_assert!(cal.is_empty());
    Ok(())
}

proptest! {
    /// Arbitrary schedule/pop interleavings pop identically.
    #[test]
    fn calendar_matches_heap_on_random_interleavings(ops in ops_strategy()) {
        run_differential(&ops)?;
    }

    /// Many events at the *same instant* pop in insertion order on both
    /// implementations (the deterministic same-tick FIFO contract).
    #[test]
    fn calendar_matches_heap_on_same_instant_ties(
        base in 0u64..3 * WHEEL_SPAN,
        n in 1usize..150,
        pops_between in 0usize..3,
    ) {
        let mut ops = Vec::new();
        for i in 0..n {
            ops.push(Op::ScheduleAbs(base));
            if i % 7 < pops_between {
                ops.push(Op::Pop);
            }
        }
        ops.extend(std::iter::repeat_n(Op::Pop, n));
        run_differential(&ops)?;
    }

    /// Schedules clustered tightly around bucket-width multiples (the
    /// boundary between adjacent buckets) and around the wheel horizon
    /// (the boundary between wheel and spill heap).
    #[test]
    fn calendar_matches_heap_on_boundary_spanning_schedules(
        edges in proptest::collection::vec((0u64..4200, 0u64..5), 1..120),
    ) {
        let mut ops: Vec<Op> = edges
            .iter()
            .map(|&(bucket_idx, jitter)| {
                // jitter 0..5 maps to offsets −2..+2 around the edge.
                let t = (bucket_idx * BUCKET) as i64 + jitter as i64 - 2;
                Op::ScheduleAbs(t.max(0) as u64)
            })
            .collect();
        ops.extend(std::iter::repeat_n(Op::Pop, edges.len()));
        run_differential(&ops)?;
    }
}
