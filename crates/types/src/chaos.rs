//! Chaos-schedule and fault-injection vocabulary shared by the runtimes
//! and the `minos-check` torture harness.
//!
//! A chaos schedule is *data*: an explicit list of message-level
//! injections ([`MsgInjection`]) derived deterministically from a `u64`
//! seed by `minos-check`, carried to the runtimes inside their configs
//! ([`crate::ClusterConfig`], the TCP node config), and applied by the
//! `ChaosNet` transport middleware in `minos-core::runtime`. Keeping the
//! schedule explicit (rather than probabilistic) is what makes greedy
//! shrinking possible: removing one injection at a time yields a strictly
//! smaller schedule that still replays deterministically.
//!
//! Crash/recovery points are part of the same schedule but are executed
//! by the torture *driver* (they need the cluster-level `crash_node` /
//! `recover_node` machinery, not the per-message transport); see
//! `minos-check`'s schedule type.

use serde::{Deserialize, Serialize};

/// What to do to the n-th wire message leaving a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgChaos {
    /// Hold the message until the end of the current dispatch (it leaves
    /// in the same flush, after everything else) — an intra-dispatch
    /// delay that can never wedge the protocol.
    DelayToFlush,
    /// Swap the message with the next one the node emits in the same
    /// dispatch (adjacent reorder).
    ReorderNext,
    /// Silently discard the message. Only schedules for harnesses with
    /// retransmission-free *loss tolerance* checks should generate this
    /// (the live runtimes have no retransmission, so a dropped ACK can
    /// wedge a write forever by design).
    Drop,
}

impl MsgChaos {
    /// Short display label (the schedule dump format).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MsgChaos::DelayToFlush => "delay",
            MsgChaos::ReorderNext => "reorder",
            MsgChaos::Drop => "drop",
        }
    }
}

/// One message-level injection: applied to the `nth` (0-based) protocol
/// message *sent* by `node` since the run began.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsgInjection {
    /// The node whose outbound message is targeted.
    pub node: u16,
    /// 0-based index into that node's outbound-message sequence.
    pub nth: u64,
    /// What happens to the message.
    pub kind: MsgChaos,
}

/// A deterministic message-level chaos schedule for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// The seed the schedule was generated from (for reproduction dumps;
    /// replay uses the explicit `injections` list, not the seed).
    pub seed: u64,
    /// The injections, in no particular order.
    pub injections: Vec<MsgInjection>,
}

impl ChaosSpec {
    /// True when the schedule injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The injections targeting `node`, in `nth` order.
    #[must_use]
    pub fn for_node(&self, node: u16) -> Vec<MsgInjection> {
        let mut v: Vec<MsgInjection> = self
            .injections
            .iter()
            .copied()
            .filter(|i| i.node == node)
            .collect();
        v.sort_by_key(|i| i.nth);
        v
    }
}

/// Which deliberate protocol bug to arm (the mutation smoke test for the
/// checker: with a fault armed, `minos-torture` must find a violating
/// schedule; with no fault, it must not).
///
/// The faults only exist in `minos-core` when it is compiled with the
/// `fault-injection` feature; this spec is plain data so configs carrying
/// it stay feature-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The coordinator "forgets" one follower on one INV fan-out but
    /// still counts it as acknowledged — the stale replica can then serve
    /// old data (a consistency violation).
    SkipInv,
    /// A follower reports one persist as complete without ever writing
    /// NVM — the write's durability guarantee is silently void (a
    /// persistency violation under Synch/Strict).
    PhantomPersist,
}

impl FaultKind {
    /// Stable CLI/display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SkipInv => "skip-inv",
            FaultKind::PhantomPersist => "phantom-persist",
        }
    }

    /// Parses [`FaultKind::label`] output back.
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "skip-inv" => Some(FaultKind::SkipInv),
            "phantom-persist" => Some(FaultKind::PhantomPersist),
            _ => None,
        }
    }
}

/// A fault armed at one node for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The node whose engine misbehaves.
    pub node: u16,
    /// Which bug to arm (each fires exactly once per run).
    pub kind: FaultKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_node_filters_and_sorts() {
        let spec = ChaosSpec {
            seed: 9,
            injections: vec![
                MsgInjection {
                    node: 1,
                    nth: 5,
                    kind: MsgChaos::Drop,
                },
                MsgInjection {
                    node: 0,
                    nth: 2,
                    kind: MsgChaos::DelayToFlush,
                },
                MsgInjection {
                    node: 1,
                    nth: 1,
                    kind: MsgChaos::ReorderNext,
                },
            ],
        };
        let n1 = spec.for_node(1);
        assert_eq!(n1.len(), 2);
        assert_eq!(n1[0].nth, 1);
        assert_eq!(n1[1].nth, 5);
        assert!(spec.for_node(7).is_empty());
        assert!(!spec.is_empty());
        assert!(ChaosSpec::default().is_empty());
    }

    #[test]
    fn fault_labels_roundtrip() {
        for k in [FaultKind::SkipInv, FaultKind::PhantomPersist] {
            assert_eq!(FaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(FaultKind::from_label("nope"), None);
    }
}
