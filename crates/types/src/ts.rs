//! Logical timestamps and fundamental identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in the cluster.
///
/// Nodes are numbered `0..n`. The paper's `<-1,-1>` "unlocked" sentinel is
/// represented in Rust by [`Option<Ts>`]`::None` rather than a magic value,
/// but [`TS_UNLOCKED`] is provided for wire/debug formatting parity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A record key in MINOS-KV.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

/// A record value.
///
/// The payload is reference-counted ([`bytes::Bytes`]) so that replicating a
/// 1 KB record to N followers does not copy it N times inside one process.
pub type Value = bytes::Bytes;

/// A logical timestamp: a `<node_id, version>` tuple (Figure 1(b)).
///
/// Ordering follows §III-A of the paper: *"Given two writes, the newer one
/// is the one that has the higher version field or, if the versions are the
/// same, the one with the higher node_id."* The derived lexicographic order
/// on `(version, node)` implements exactly that rule.
///
/// # Example
///
/// ```
/// use minos_types::{NodeId, Ts};
/// let t = Ts::new(NodeId(2), 5);
/// assert_eq!(t.next_version(NodeId(4)), Ts::new(NodeId(4), 6));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ts {
    /// Version number; compared first.
    pub version: u32,
    /// Issuing node; breaks version ties.
    pub node: NodeId,
}

/// Formatting sentinel equivalent to the paper's released-lock `<-1,-1>`.
pub const TS_UNLOCKED: &str = "<-1,-1>";

impl Ts {
    /// Creates a timestamp from its two fields.
    #[must_use]
    pub fn new(node: NodeId, version: u32) -> Self {
        Ts { version, node }
    }

    /// The zero timestamp carried by a freshly loaded record.
    #[must_use]
    pub fn zero() -> Self {
        Ts::default()
    }

    /// Generates the timestamp of a new client-write issued at `node`,
    /// based on this (the record's current `volatileTS`) — §III-A: the
    /// version is the current version plus one, the node id is the
    /// coordinator's.
    #[must_use]
    pub fn next_version(self, node: NodeId) -> Self {
        Ts {
            version: self.version + 1,
            node,
        }
    }

    /// Returns true if `self` is strictly newer than `other`.
    #[must_use]
    pub fn newer_than(self, other: Ts) -> bool {
        self > other
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},v{}>", self.node, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_dominates_node_id() {
        assert!(Ts::new(NodeId(0), 2) > Ts::new(NodeId(9), 1));
    }

    #[test]
    fn node_id_breaks_ties() {
        assert!(Ts::new(NodeId(3), 2) > Ts::new(NodeId(1), 2));
        assert!(Ts::new(NodeId(1), 2) < Ts::new(NodeId(3), 2));
    }

    #[test]
    fn equal_only_when_identical() {
        assert_eq!(Ts::new(NodeId(1), 2), Ts::new(NodeId(1), 2));
        assert_ne!(Ts::new(NodeId(1), 2), Ts::new(NodeId(2), 2));
    }

    #[test]
    fn next_version_increments_and_rebrands() {
        let t = Ts::new(NodeId(7), 41);
        let n = t.next_version(NodeId(2));
        assert_eq!(n.version, 42);
        assert_eq!(n.node, NodeId(2));
        assert!(n > t);
    }

    #[test]
    fn zero_is_minimum() {
        assert!(Ts::zero() <= Ts::new(NodeId(0), 0));
        assert!(Ts::zero() < Ts::new(NodeId(0), 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ts::new(NodeId(3), 9).to_string(), "<n3,v9>");
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Key(12).to_string(), "k12");
    }
}
