//! A compact, dependency-free binary wire codec for protocol messages.
//!
//! The multi-process runtime (`minos-cluster`'s TCP transport) needs a
//! wire format; the approved dependency set has no serializer binary
//! format, so this module hand-rolls one. The encoding is
//! little-endian, length-prefixed, and versioned by a leading tag byte
//! per message kind.

use crate::membership::ViewMsg;
use crate::{Key, Message, NodeId, ScopeId, ShardMap, Ts, Value};

/// Errors from [`decode_message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended mid-message.
    Truncated,
    /// An unknown message tag was encountered.
    BadTag(u8),
    /// Trailing bytes followed a complete message.
    TrailingBytes(usize),
    /// A view-change payload carried a malformed placement codec.
    BadPayload(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadPayload(why) => write!(f, "bad view-change payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn ts(&mut self, t: Ts) {
        self.u32(t.version);
        self.u16(t.node.0);
    }
    fn key(&mut self, k: Key) {
        self.u64(k.0);
    }
    fn scope_opt(&mut self, s: Option<ScopeId>) {
        match s {
            Some(sc) => {
                self.u8(1);
                self.u32(sc.0);
            }
            None => self.u8(0),
        }
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn ts(&mut self) -> Result<Ts, WireError> {
        let version = self.u32()?;
        let node = NodeId(self.u16()?);
        Ok(Ts { version, node })
    }
    fn key(&mut self) -> Result<Key, WireError> {
        Ok(Key(self.u64()?))
    }
    fn scope_opt(&mut self) -> Result<Option<ScopeId>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(ScopeId(self.u32()?))),
        }
    }
    fn bytes(&mut self) -> Result<Value, WireError> {
        let n = self.u32()? as usize;
        Ok(Value::copy_from_slice(self.take(n)?))
    }
}

/// A compact distributed-tracing context that rides the wire alongside
/// protocol traffic.
///
/// One context names one *hop*: `trace_id` is the end-to-end operation
/// identity (minted when a client op is admitted), `span` is the
/// sender-side dispatch that emitted the message(s), and `origin_ns` is
/// the sender's local clock at emission — the receiver records it so an
/// offline assembler can fit per-node clock offsets from matched
/// send/recv pairs. All-zero fields mean "absent" (untraced traffic).
///
/// Encoded as 24 fixed little-endian bytes
/// (`[u64 trace_id][u64 span][u64 origin_ns]`); see
/// [`TraceCtx::encode`] / [`TraceCtx::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// End-to-end operation identity, stable across every hop.
    pub trace_id: u64,
    /// The sending dispatch's span id (the receiver's parent span).
    pub span: u64,
    /// Sender-local clock (ns) when the message was emitted; 0 = unknown.
    pub origin_ns: u64,
}

impl TraceCtx {
    /// Encoded size in bytes.
    pub const WIRE_LEN: usize = 24;

    /// True when every field is zero — the "no context" sentinel.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace_id == 0 && self.span == 0 && self.origin_ns == 0
    }

    /// Encodes the context as 24 little-endian bytes.
    #[must_use]
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.span.to_le_bytes());
        out[16..].copy_from_slice(&self.origin_ns.to_le_bytes());
        out
    }

    /// Decodes a context from the first 24 bytes of `buf`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when `buf` is shorter than
    /// [`TraceCtx::WIRE_LEN`].
    pub fn decode(buf: &[u8]) -> Result<TraceCtx, WireError> {
        if buf.len() < Self::WIRE_LEN {
            return Err(WireError::Truncated);
        }
        Ok(TraceCtx {
            trace_id: u64::from_le_bytes(buf[..8].try_into().unwrap()),
            span: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            origin_ns: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
        })
    }
}

/// Flag bit on a client-protocol op byte marking that a 24-byte
/// [`TraceCtx`] follows the client-request id. Op bytes are small
/// (1..=6), so the high bit is free; a server masks with `!CLIENT_CTX_FLAG`
/// before switching on the op.
pub const CLIENT_CTX_FLAG: u8 = 0x80;

const TAG_INV: u8 = 0x01;
const TAG_ACK: u8 = 0x02;
const TAG_ACK_C: u8 = 0x03;
const TAG_ACK_P: u8 = 0x04;
const TAG_VAL: u8 = 0x05;
const TAG_VAL_C: u8 = 0x06;
const TAG_VAL_P: u8 = 0x07;
const TAG_PERSIST: u8 = 0x08;
const TAG_PERSIST_ACK: u8 = 0x09;
const TAG_PERSIST_VAL: u8 = 0x0A;
const TAG_READ_REQ: u8 = 0x0B;
const TAG_READ_RESP: u8 = 0x0C;

/// Encodes `msg` into a self-contained byte vector.
#[must_use]
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_message_into(msg, &mut out);
    out
}

/// Appends the encoding of `msg` to `out` — the scratch-buffer variant
/// of [`encode_message`] for hot paths that encode many messages and
/// want to reuse one allocation.
pub fn encode_message_into(msg: &Message, out: &mut Vec<u8>) {
    let mut w = Writer(std::mem::take(out));
    write_message(&mut w, msg);
    *out = w.0;
}

fn write_message(w: &mut Writer, msg: &Message) {
    match msg {
        Message::Inv {
            key,
            ts,
            value,
            scope,
        } => {
            w.u8(TAG_INV);
            w.key(*key);
            w.ts(*ts);
            w.scope_opt(*scope);
            w.bytes(value);
        }
        Message::Ack { key, ts } => {
            w.u8(TAG_ACK);
            w.key(*key);
            w.ts(*ts);
        }
        Message::AckC { key, ts, scope } => {
            w.u8(TAG_ACK_C);
            w.key(*key);
            w.ts(*ts);
            w.scope_opt(*scope);
        }
        Message::AckP { key, ts } => {
            w.u8(TAG_ACK_P);
            w.key(*key);
            w.ts(*ts);
        }
        Message::Val { key, ts } => {
            w.u8(TAG_VAL);
            w.key(*key);
            w.ts(*ts);
        }
        Message::ValC { key, ts, scope } => {
            w.u8(TAG_VAL_C);
            w.key(*key);
            w.ts(*ts);
            w.scope_opt(*scope);
        }
        Message::ValP { key, ts } => {
            w.u8(TAG_VAL_P);
            w.key(*key);
            w.ts(*ts);
        }
        Message::Persist { scope } => {
            w.u8(TAG_PERSIST);
            w.u32(scope.0);
        }
        Message::PersistAckP { scope } => {
            w.u8(TAG_PERSIST_ACK);
            w.u32(scope.0);
        }
        Message::PersistValP { scope } => {
            w.u8(TAG_PERSIST_VAL);
            w.u32(scope.0);
        }
        Message::ReadReq { key, token } => {
            w.u8(TAG_READ_REQ);
            w.key(*key);
            w.u64(*token);
        }
        Message::ReadResp {
            key,
            token,
            value,
            ts,
        } => {
            w.u8(TAG_READ_RESP);
            w.key(*key);
            w.u64(*token);
            w.ts(*ts);
            w.bytes(value);
        }
    }
}

/// Decodes a message previously produced by [`encode_message`].
///
/// # Errors
///
/// [`WireError::Truncated`] for short buffers, [`WireError::BadTag`] for
/// unknown kinds, [`WireError::TrailingBytes`] for oversized buffers.
pub fn decode_message(buf: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let msg = match r.u8()? {
        TAG_INV => {
            let key = r.key()?;
            let ts = r.ts()?;
            let scope = r.scope_opt()?;
            let value = r.bytes()?;
            Message::Inv {
                key,
                ts,
                value,
                scope,
            }
        }
        TAG_ACK => Message::Ack {
            key: r.key()?,
            ts: r.ts()?,
        },
        TAG_ACK_C => Message::AckC {
            key: r.key()?,
            ts: r.ts()?,
            scope: r.scope_opt()?,
        },
        TAG_ACK_P => Message::AckP {
            key: r.key()?,
            ts: r.ts()?,
        },
        TAG_VAL => Message::Val {
            key: r.key()?,
            ts: r.ts()?,
        },
        TAG_VAL_C => Message::ValC {
            key: r.key()?,
            ts: r.ts()?,
            scope: r.scope_opt()?,
        },
        TAG_VAL_P => Message::ValP {
            key: r.key()?,
            ts: r.ts()?,
        },
        TAG_PERSIST => Message::Persist {
            scope: ScopeId(r.u32()?),
        },
        TAG_PERSIST_ACK => Message::PersistAckP {
            scope: ScopeId(r.u32()?),
        },
        TAG_PERSIST_VAL => Message::PersistValP {
            scope: ScopeId(r.u32()?),
        },
        TAG_READ_REQ => Message::ReadReq {
            key: r.key()?,
            token: r.u64()?,
        },
        TAG_READ_RESP => {
            let key = r.key()?;
            let token = r.u64()?;
            let ts = r.ts()?;
            let value = r.bytes()?;
            Message::ReadResp {
                key,
                token,
                value,
                ts,
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    if r.pos != buf.len() {
        return Err(WireError::TrailingBytes(buf.len() - r.pos));
    }
    Ok(msg)
}

/// Encodes a peer-to-peer frame: `from` plus one or more protocol
/// messages batched into a single unit.
///
/// Layout: `[u16 from][u16 count]` then, per message, `[u32 len]` and the
/// [`encode_message`] bytes. This is the **only** peer framing in the
/// workspace — the TCP transport and the batching middleware both encode
/// through here, so a frame written by one is decodable by the other.
#[must_use]
pub fn encode_peer_frame(from: NodeId, msgs: &[Message]) -> Vec<u8> {
    encode_peer_frame_ctx(from, msgs, None)
}

/// Flag bit on a peer frame's count field marking that a 24-byte
/// [`TraceCtx`] follows the header. Batch counts stay far below 2^15, so
/// the high bit is free and ctx-less frames are bit-identical to the
/// pre-tracing encoding.
const FRAME_CTX_FLAG: u16 = 0x8000;

/// Encodes a peer frame carrying an optional [`TraceCtx`].
///
/// Layout: `[u16 from][u16 count]` as in [`encode_peer_frame`]; when a
/// context is present the count field has its high bit
/// (`FRAME_CTX_FLAG`, `0x8000`) set and the 24 context bytes sit
/// between the header and the first message. A `Some` context with
/// all-zero fields is encoded as absent.
#[must_use]
pub fn encode_peer_frame_ctx(from: NodeId, msgs: &[Message], ctx: Option<TraceCtx>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * msgs.len() + 4 + TraceCtx::WIRE_LEN);
    encode_peer_frame_ctx_into(from, msgs, ctx, &mut out);
    out
}

/// [`encode_peer_frame_ctx`] into a caller-owned scratch buffer:
/// replaces `out`'s contents with the frame, reusing its allocation.
/// Messages are encoded in place behind a `u32` length field that is
/// backpatched once each message's size is known — no per-message (or
/// per-frame) intermediate vector.
pub fn encode_peer_frame_ctx_into(
    from: NodeId,
    msgs: &[Message],
    ctx: Option<TraceCtx>,
    out: &mut Vec<u8>,
) {
    out.clear();
    let ctx = ctx.filter(|c| !c.is_empty());
    let mut w = Writer(std::mem::take(out));
    w.u16(from.0);
    debug_assert!(msgs.len() < FRAME_CTX_FLAG as usize, "peer frame too large");
    let mut count = msgs.len() as u16;
    if ctx.is_some() {
        count |= FRAME_CTX_FLAG;
    }
    w.u16(count);
    if let Some(c) = ctx {
        w.0.extend_from_slice(&c.encode());
    }
    for msg in msgs {
        let at = w.0.len();
        w.u32(0); // length placeholder
        write_message(&mut w, msg);
        let len = (w.0.len() - at - 4) as u32;
        w.0[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }
    *out = w.0;
}

/// Decodes a frame produced by [`encode_peer_frame`].
///
/// # Errors
///
/// [`WireError::Truncated`] for short buffers, [`WireError::BadTag`] for
/// unknown message kinds, [`WireError::TrailingBytes`] for oversized
/// buffers.
pub fn decode_peer_frame(buf: &[u8]) -> Result<(NodeId, Vec<Message>), WireError> {
    let (from, msgs, _) = decode_peer_frame_ctx(buf)?;
    Ok((from, msgs))
}

/// Decodes a frame produced by [`encode_peer_frame_ctx`] (or, with
/// `None` context, by [`encode_peer_frame`]).
///
/// # Errors
///
/// As for [`decode_peer_frame`].
pub fn decode_peer_frame_ctx(
    buf: &[u8],
) -> Result<(NodeId, Vec<Message>, Option<TraceCtx>), WireError> {
    let mut r = Reader { buf, pos: 0 };
    let from = NodeId(r.u16()?);
    let raw_count = r.u16()?;
    let ctx = if raw_count & FRAME_CTX_FLAG != 0 {
        Some(TraceCtx::decode(r.take(TraceCtx::WIRE_LEN)?)?)
    } else {
        None
    };
    let count = (raw_count & !FRAME_CTX_FLAG) as usize;
    let mut msgs = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.u32()? as usize;
        msgs.push(decode_message(r.take(len)?)?);
    }
    if r.pos != buf.len() {
        return Err(WireError::TrailingBytes(buf.len() - r.pos));
    }
    Ok((from, msgs, ctx))
}

// Control-plane view-change tags live in a separate 0x20+ namespace so a
// protocol-message decoder can never confuse them with Table I traffic.
const TAG_VIEW_LEASE: u8 = 0x20;
const TAG_VIEW_DOWN: u8 = 0x21;
const TAG_VIEW_REJOIN_START: u8 = 0x22;
const TAG_VIEW_REJOIN_DONE: u8 = 0x23;
const TAG_VIEW_INSTALL_MAP: u8 = 0x24;

/// Encodes a control-plane view-change message. The placement map inside
/// [`ViewMsg::InstallMap`] rides as its compact text codec
/// (`epoch=E;nodes=N;groups=…`), so the wire format and the CLI flags
/// share one parser.
#[must_use]
pub fn encode_view_msg(msg: &ViewMsg) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(32));
    match msg {
        ViewMsg::LeaseRenew {
            node,
            expires_at_ns,
        } => {
            w.u8(TAG_VIEW_LEASE);
            w.u16(node.0);
            w.u64(*expires_at_ns);
        }
        ViewMsg::NodeDown { node, epoch } => {
            w.u8(TAG_VIEW_DOWN);
            w.u16(node.0);
            w.u64(*epoch);
        }
        ViewMsg::RejoinStart { node, epoch } => {
            w.u8(TAG_VIEW_REJOIN_START);
            w.u16(node.0);
            w.u64(*epoch);
        }
        ViewMsg::RejoinDone { node, epoch } => {
            w.u8(TAG_VIEW_REJOIN_DONE);
            w.u16(node.0);
            w.u64(*epoch);
        }
        ViewMsg::InstallMap { map } => {
            w.u8(TAG_VIEW_INSTALL_MAP);
            w.bytes(map.to_string().as_bytes());
        }
    }
    w.0
}

/// Decodes a message produced by [`encode_view_msg`].
///
/// # Errors
///
/// [`WireError::Truncated`] / [`WireError::BadTag`] /
/// [`WireError::TrailingBytes`] as for [`decode_message`], plus
/// [`WireError::BadPayload`] when an `InstallMap` placement codec does
/// not parse.
pub fn decode_view_msg(buf: &[u8]) -> Result<ViewMsg, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let msg = match r.u8()? {
        TAG_VIEW_LEASE => ViewMsg::LeaseRenew {
            node: NodeId(r.u16()?),
            expires_at_ns: r.u64()?,
        },
        TAG_VIEW_DOWN => ViewMsg::NodeDown {
            node: NodeId(r.u16()?),
            epoch: r.u64()?,
        },
        TAG_VIEW_REJOIN_START => ViewMsg::RejoinStart {
            node: NodeId(r.u16()?),
            epoch: r.u64()?,
        },
        TAG_VIEW_REJOIN_DONE => ViewMsg::RejoinDone {
            node: NodeId(r.u16()?),
            epoch: r.u64()?,
        },
        TAG_VIEW_INSTALL_MAP => {
            let raw = r.bytes()?;
            let text =
                std::str::from_utf8(&raw).map_err(|e| WireError::BadPayload(e.to_string()))?;
            let map: ShardMap = text.parse().map_err(WireError::BadPayload)?;
            ViewMsg::InstallMap { map }
        }
        t => return Err(WireError::BadTag(t)),
    };
    if r.pos != buf.len() {
        return Err(WireError::TrailingBytes(buf.len() - r.pos));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardId;

    fn roundtrip(msg: Message) {
        let enc = encode_message(&msg);
        let dec = decode_message(&enc).expect("decode");
        assert_eq!(dec, msg);
    }

    #[test]
    fn all_kinds_roundtrip() {
        let key = Key(0xDEAD_BEEF);
        let ts = Ts::new(NodeId(7), 42);
        let sc = Some(ScopeId(9));
        roundtrip(Message::Inv {
            key,
            ts,
            value: Value::from_static(b"payload bytes"),
            scope: sc,
        });
        roundtrip(Message::Inv {
            key,
            ts,
            value: Value::new(),
            scope: None,
        });
        roundtrip(Message::Ack { key, ts });
        roundtrip(Message::AckC { key, ts, scope: sc });
        roundtrip(Message::AckC {
            key,
            ts,
            scope: None,
        });
        roundtrip(Message::AckP { key, ts });
        roundtrip(Message::Val { key, ts });
        roundtrip(Message::ValC { key, ts, scope: sc });
        roundtrip(Message::ValP { key, ts });
        roundtrip(Message::Persist { scope: ScopeId(3) });
        roundtrip(Message::PersistAckP { scope: ScopeId(3) });
        roundtrip(Message::PersistValP { scope: ScopeId(3) });
        roundtrip(Message::ReadReq { key, token: 99 });
        roundtrip(Message::ReadResp {
            key,
            token: 99,
            value: Value::from_static(b"resp"),
            ts,
        });
    }

    #[test]
    fn truncated_buffers_error() {
        let enc = encode_message(&Message::Ack {
            key: Key(1),
            ts: Ts::new(NodeId(0), 1),
        });
        for cut in 0..enc.len() {
            assert_eq!(
                decode_message(&enc[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_tag_detected() {
        assert_eq!(decode_message(&[0xFF]), Err(WireError::BadTag(0xFF)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut enc = encode_message(&Message::Persist { scope: ScopeId(1) });
        enc.push(0);
        assert_eq!(decode_message(&enc), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn peer_frames_roundtrip() {
        let key = Key(11);
        let ts = Ts::new(NodeId(2), 5);
        let msgs = vec![
            Message::Inv {
                key,
                ts,
                value: Value::from_static(b"abc"),
                scope: Some(ScopeId(1)),
            },
            Message::Ack { key, ts },
            Message::Persist { scope: ScopeId(1) },
        ];
        let enc = encode_peer_frame(NodeId(3), &msgs);
        let (from, dec) = decode_peer_frame(&enc).expect("decode");
        assert_eq!(from, NodeId(3));
        assert_eq!(dec, msgs);

        // Empty frames are legal (a flush with nothing buffered).
        let enc = encode_peer_frame(NodeId(0), &[]);
        assert_eq!(decode_peer_frame(&enc), Ok((NodeId(0), vec![])));
    }

    #[test]
    fn peer_frame_truncation_detected() {
        let enc = encode_peer_frame(
            NodeId(1),
            &[Message::Ack {
                key: Key(1),
                ts: Ts::new(NodeId(0), 1),
            }],
        );
        for cut in 0..enc.len() {
            assert!(
                decode_peer_frame(&enc[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        let mut padded = enc;
        padded.push(7);
        assert_eq!(decode_peer_frame(&padded), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn view_msgs_roundtrip_including_non_uniform_maps() {
        let mut map = ShardMap::uniform(2, 4, 2);
        map.remove_node(NodeId(2)).unwrap();
        map.add_replica(ShardId(1), NodeId(1)).unwrap();
        let cases = vec![
            ViewMsg::LeaseRenew {
                node: NodeId(3),
                expires_at_ns: u64::MAX,
            },
            ViewMsg::NodeDown {
                node: NodeId(0),
                epoch: 17,
            },
            ViewMsg::RejoinStart {
                node: NodeId(1),
                epoch: 17,
            },
            ViewMsg::RejoinDone {
                node: NodeId(1),
                epoch: 18,
            },
            ViewMsg::InstallMap { map: map.clone() },
        ];
        for msg in cases {
            let enc = encode_view_msg(&msg);
            assert_eq!(decode_view_msg(&enc), Ok(msg.clone()), "{msg:?}");
        }
        // The installed map keeps its bumped epoch and ragged groups.
        let enc = encode_view_msg(&ViewMsg::InstallMap { map: map.clone() });
        let ViewMsg::InstallMap { map: back } = decode_view_msg(&enc).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(back.epoch(), map.epoch());
        assert_eq!(back, map);
    }

    #[test]
    fn view_msg_decoder_rejects_protocol_tags_and_garbage_maps() {
        let enc = encode_message(&Message::Persist { scope: ScopeId(1) });
        assert!(matches!(
            decode_view_msg(&enc),
            Err(WireError::BadTag(TAG_PERSIST))
        ));
        let mut w = Writer(Vec::new());
        w.u8(TAG_VIEW_INSTALL_MAP);
        w.bytes(b"epoch=zzz;nodes=2;groups=0,1");
        assert!(matches!(
            decode_view_msg(&w.0),
            Err(WireError::BadPayload(_))
        ));
        for cut in 0..4 {
            assert!(decode_view_msg(
                &encode_view_msg(&ViewMsg::NodeDown {
                    node: NodeId(0),
                    epoch: 1
                })[..cut]
            )
            .is_err());
        }
    }

    #[test]
    fn trace_ctx_roundtrips_and_rejects_short_buffers() {
        let ctx = TraceCtx {
            trace_id: 0x1122_3344_5566_7788,
            span: 42,
            origin_ns: u64::MAX,
        };
        let enc = ctx.encode();
        assert_eq!(enc.len(), TraceCtx::WIRE_LEN);
        assert_eq!(TraceCtx::decode(&enc), Ok(ctx));
        for cut in 0..TraceCtx::WIRE_LEN {
            assert_eq!(TraceCtx::decode(&enc[..cut]), Err(WireError::Truncated));
        }
        assert!(TraceCtx::default().is_empty());
        assert!(!ctx.is_empty());
    }

    #[test]
    fn ctx_frames_roundtrip_and_interoperate_with_plain_frames() {
        let msgs = vec![
            Message::Ack {
                key: Key(5),
                ts: Ts::new(NodeId(1), 3),
            },
            Message::Persist { scope: ScopeId(2) },
        ];
        let ctx = TraceCtx {
            trace_id: 7,
            span: 9,
            origin_ns: 1234,
        };
        let enc = encode_peer_frame_ctx(NodeId(4), &msgs, Some(ctx));
        assert_eq!(
            decode_peer_frame_ctx(&enc),
            Ok((NodeId(4), msgs.clone(), Some(ctx)))
        );
        // The ctx-less decoder still accepts a ctx frame (drops the ctx).
        assert_eq!(decode_peer_frame(&enc), Ok((NodeId(4), msgs.clone())));
        // A plain frame decodes through the ctx decoder with no ctx, and
        // an empty (all-zero) ctx encodes as absent — bit-identical to
        // the pre-tracing frame layout.
        let plain = encode_peer_frame(NodeId(4), &msgs);
        assert_eq!(
            decode_peer_frame_ctx(&plain),
            Ok((NodeId(4), msgs.clone(), None))
        );
        assert_eq!(
            encode_peer_frame_ctx(NodeId(4), &msgs, Some(TraceCtx::default())),
            plain
        );
        // Truncation sweep over the ctx-bearing frame.
        for cut in 0..enc.len() {
            assert!(
                decode_peer_frame_ctx(&enc[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        // Empty ctx frames are legal (flush with nothing buffered).
        let empty = encode_peer_frame_ctx(NodeId(0), &[], Some(ctx));
        assert_eq!(
            decode_peer_frame_ctx(&empty),
            Ok((NodeId(0), vec![], Some(ctx)))
        );
    }

    #[test]
    fn large_payload_roundtrips() {
        roundtrip(Message::Inv {
            key: Key(1),
            ts: Ts::new(NodeId(1), 1),
            value: Value::from(vec![0xA5u8; 64 * 1024]),
            scope: None,
        });
    }
}
