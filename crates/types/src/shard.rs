//! Key-space sharding: the cluster-wide placement map.
//!
//! The paper evaluates MINOS on a single fully-replicated group, but the
//! B/O engines are per-key state machines — nothing in the protocol needs
//! global membership. [`ShardMap`] partitions the key space into
//! [`ShardId`]s by hash, assigns each shard a replica group (a
//! [`GroupId`] naming an ordered set of nodes), and versions the whole
//! assignment with a placement epoch. Every runtime (loopback, DES,
//! threaded, TCP, KV) consults the same map, so routing decisions agree
//! across harnesses.
//!
//! Placement rules:
//!
//! * `shard_of(key) = key % n_shards` — hash partition;
//! * one replica group per shard, `replication_factor()` nodes each;
//! * [`ShardMap::uniform`] lays groups out disjointly (stride
//!   `n_nodes / n_shards`) when the node count divides evenly and the
//!   factor fits the stride — the scale-out shape — and falls back to a
//!   hash-ring of consecutive nodes otherwise, which makes
//!   `uniform(n, n, k)` reproduce the legacy `replication factor k`
//!   semantics exactly (k consecutive nodes from `key % n`).

use minos_types_shard_imports::*;

mod minos_types_shard_imports {
    pub use crate::ts::{Key, NodeId};
    pub use serde::{Deserialize, Serialize};
    pub use std::collections::BTreeSet;
    pub use std::fmt;
    pub use std::str::FromStr;
}

/// Identifier of one key-space partition.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a replica group. Groups and shards are 1:1 in the
/// current map (group `g` serves shard `g`); the distinct type keeps the
/// door open for multi-shard groups without another refactor.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The cluster-wide placement map: hash partition of the key space into
/// shards, one replica group (ordered node set) per shard, versioned by
/// a monotonically increasing placement epoch.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardMap {
    /// Placement version; bumped on every reassignment.
    epoch: u64,
    /// Total nodes the map places onto.
    n_nodes: usize,
    /// Replica group per shard (index = shard id), each an ordered,
    /// duplicate-free node list. `groups[s][0]` is the shard's home node
    /// (deterministic redirect target for non-replica submissions).
    groups: Vec<Vec<NodeId>>,
}

impl ShardMap {
    /// The unsharded map: one shard, replicated on all `n_nodes` nodes —
    /// the paper's full-replication configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    #[must_use]
    pub fn single(n_nodes: usize) -> Self {
        ShardMap::uniform(1, n_nodes, n_nodes as u16)
    }

    /// `n_shards` shards over `n_nodes` nodes, `replicas` nodes per
    /// group.
    ///
    /// When `n_nodes` is a multiple of `n_shards` and `replicas` fits in
    /// the stride, groups are disjoint node ranges (shard `s` owns nodes
    /// `[s·stride, s·stride + replicas)`) — independent groups, the
    /// scale-out shape. Otherwise groups are `replicas` consecutive
    /// nodes starting at `s % n_nodes` (hash ring), which makes
    /// `uniform(n, n, k)` equal the legacy replication-factor-`k`
    /// placement.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `replicas > n_nodes`.
    #[must_use]
    pub fn uniform(n_shards: u32, n_nodes: usize, replicas: u16) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert!(n_nodes > 0, "need at least one node");
        let k = replicas as usize;
        assert!(
            k >= 1 && k <= n_nodes,
            "replication factor {replicas} out of range for {n_nodes} nodes"
        );
        let stride = n_nodes / n_shards as usize;
        let disjoint = n_nodes.is_multiple_of(n_shards as usize) && k <= stride;
        let groups = (0..n_shards as usize)
            .map(|s| {
                if disjoint {
                    (0..k).map(|i| NodeId((s * stride + i) as u16)).collect()
                } else {
                    let start = s % n_nodes;
                    (0..k)
                        .map(|i| NodeId(((start + i) % n_nodes) as u16))
                        .collect()
                }
            })
            .collect();
        ShardMap {
            epoch: 1,
            n_nodes,
            groups,
        }
    }

    /// Builds a map from explicit replica groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty, any group is empty or holds
    /// duplicates, or any node index is `>= n_nodes`.
    #[must_use]
    pub fn explicit(n_nodes: usize, groups: Vec<Vec<NodeId>>) -> Self {
        assert!(!groups.is_empty(), "need at least one shard group");
        for (s, g) in groups.iter().enumerate() {
            assert!(!g.is_empty(), "shard {s} has an empty replica group");
            let distinct: BTreeSet<NodeId> = g.iter().copied().collect();
            assert_eq!(distinct.len(), g.len(), "shard {s} lists a node twice");
            for n in g {
                assert!(
                    (n.0 as usize) < n_nodes,
                    "shard {s} places on node {n} but the map has {n_nodes} nodes"
                );
            }
        }
        ShardMap {
            epoch: 1,
            n_nodes,
            groups,
        }
    }

    /// The placement epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the placement epoch (a reassignment happened); returns
    /// the new epoch. Strictly monotonic.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> u32 {
        self.groups.len() as u32
    }

    /// Number of nodes the map places onto.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Replicas per shard (groups are uniform in size for maps built by
    /// [`ShardMap::uniform`]; for explicit maps this is the largest
    /// group).
    #[must_use]
    pub fn replication_factor(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The shard `key` hashes to. Total: every key maps to exactly one
    /// shard.
    #[must_use]
    pub fn shard_of(&self, key: Key) -> ShardId {
        ShardId((key.0 % self.groups.len() as u64) as u32)
    }

    /// The replica group serving `shard`.
    #[must_use]
    pub fn group_of(&self, shard: ShardId) -> GroupId {
        assert!((shard.0 as usize) < self.groups.len(), "unknown {shard}");
        GroupId(shard.0)
    }

    /// The ordered replica set of `shard`.
    #[must_use]
    pub fn replicas_of_shard(&self, shard: ShardId) -> &[NodeId] {
        &self.groups[shard.0 as usize]
    }

    /// The ordered replica set of `key`'s shard.
    #[must_use]
    pub fn replicas_of_key(&self, key: Key) -> &[NodeId] {
        self.replicas_of_shard(self.shard_of(key))
    }

    /// True when `node` replicates `key`'s shard.
    #[must_use]
    pub fn is_replica(&self, node: NodeId, key: Key) -> bool {
        self.replicas_of_key(key).contains(&node)
    }

    /// The node that serves an operation on `key` submitted at `origin`:
    /// `origin` itself when it is a replica, otherwise the shard's home
    /// node (the deterministic redirect target).
    #[must_use]
    pub fn serving(&self, origin: NodeId, key: Key) -> NodeId {
        if self.is_replica(origin, key) {
            origin
        } else {
            self.replicas_of_key(key)[0]
        }
    }

    /// The shards `node` replicates, ascending.
    #[must_use]
    pub fn shards_on(&self, node: NodeId) -> Vec<ShardId> {
        (0..self.groups.len() as u32)
            .map(ShardId)
            .filter(|&s| self.groups[s.0 as usize].contains(&node))
            .collect()
    }

    /// `Some(shard)` when `node` replicates exactly one shard — the
    /// disjoint scale-out layout, where per-node telemetry can be tagged
    /// with the node's shard.
    #[must_use]
    pub fn sole_shard_on(&self, node: NodeId) -> Option<ShardId> {
        let mut shards = self.shards_on(node).into_iter();
        match (shards.next(), shards.next()) {
            (Some(s), None) => Some(s),
            _ => None,
        }
    }

    /// Every node that shares at least one shard group with `node` (its
    /// candidate recovery donors), excluding `node` itself.
    #[must_use]
    pub fn peers_of(&self, node: NodeId) -> BTreeSet<NodeId> {
        let mut peers = BTreeSet::new();
        for g in &self.groups {
            if g.contains(&node) {
                peers.extend(g.iter().copied());
            }
        }
        peers.remove(&node);
        peers
    }

    /// True when no node replicates more than one shard and no two
    /// groups overlap — the independent-groups scale-out layout.
    #[must_use]
    pub fn is_disjoint(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.groups
            .iter()
            .all(|g| g.iter().all(|&n| seen.insert(n)))
    }

    /// Removes `node` from every replica group it appears in (the node
    /// left the cluster for good, or is being drained ahead of a
    /// re-replication) and bumps the epoch. Returns the shards that are
    /// now short one replica — the re-replication work list.
    ///
    /// # Errors
    ///
    /// Refuses (leaving the map untouched) when removing the node would
    /// empty any group: a shard must always keep at least one replica to
    /// donate from.
    pub fn remove_node(&mut self, node: NodeId) -> Result<Vec<ShardId>, String> {
        let affected: Vec<ShardId> = self.shards_on(node);
        for &s in &affected {
            if self.groups[s.0 as usize].len() == 1 {
                return Err(format!(
                    "removing node {node} would leave {s} with no replicas"
                ));
            }
        }
        for &s in &affected {
            self.groups[s.0 as usize].retain(|&n| n != node);
        }
        if !affected.is_empty() {
            self.bump_epoch();
        }
        Ok(affected)
    }

    /// Adds `node` as a replica of `shard` (the re-replication cutover:
    /// the background copy finished and the new replica goes live) and
    /// bumps the epoch.
    ///
    /// # Errors
    ///
    /// Refuses when the node already replicates the shard or its id is
    /// outside the map.
    pub fn add_replica(&mut self, shard: ShardId, node: NodeId) -> Result<u64, String> {
        assert!((shard.0 as usize) < self.groups.len(), "unknown {shard}");
        if (node.0 as usize) >= self.n_nodes {
            return Err(format!(
                "node {node} is outside the {}-node map",
                self.n_nodes
            ));
        }
        if self.groups[shard.0 as usize].contains(&node) {
            return Err(format!("node {node} already replicates {shard}"));
        }
        self.groups[shard.0 as usize].push(node);
        Ok(self.bump_epoch())
    }

    /// Shards with fewer than `target` replicas, ascending — the
    /// re-replication planner's input.
    #[must_use]
    pub fn under_replicated(&self, target: usize) -> Vec<ShardId> {
        (0..self.groups.len() as u32)
            .map(ShardId)
            .filter(|&s| self.groups[s.0 as usize].len() < target)
            .collect()
    }

    /// Picks the donor for re-replicating `shard`: the group's first
    /// member not listed in `exclude` (the home node is the
    /// longest-standing replica, so it is preferred).
    #[must_use]
    pub fn donor_for(&self, shard: ShardId, exclude: &[NodeId]) -> Option<NodeId> {
        self.groups[shard.0 as usize]
            .iter()
            .copied()
            .find(|n| !exclude.contains(n))
    }

    /// Parses the compact spec accepted by the `--shards`/`--placement`
    /// CLI flags. Two forms:
    ///
    /// * `"SxK"` — `S` shards, `K` replicas each, uniform over
    ///   `n_nodes` (e.g. `16x4`);
    /// * the explicit [`fmt::Display`] codec,
    ///   `"epoch=E;nodes=N;groups=0,1,2|3,4,5"`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse_spec(spec: &str, n_nodes: usize) -> Result<Self, String> {
        if spec.contains('=') {
            return spec.parse();
        }
        let (s, k) = spec
            .split_once('x')
            .ok_or_else(|| format!("placement spec {spec:?}: expected SxK or the epoch= codec"))?;
        let shards: u32 = s
            .trim()
            .parse()
            .map_err(|e| format!("placement spec {spec:?}: bad shard count: {e}"))?;
        let replicas: u16 = k
            .trim()
            .parse()
            .map_err(|e| format!("placement spec {spec:?}: bad replica count: {e}"))?;
        if shards == 0 || replicas == 0 || replicas as usize > n_nodes {
            return Err(format!(
                "placement spec {spec:?} is out of range for {n_nodes} nodes"
            ));
        }
        Ok(ShardMap::uniform(shards, n_nodes, replicas))
    }
}

impl fmt::Display for ShardMap {
    /// The compact text codec: `epoch=E;nodes=N;groups=0,1|2,3`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch={};nodes={};groups=", self.epoch, self.n_nodes)?;
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                f.write_str("|")?;
            }
            for (j, n) in g.iter().enumerate() {
                if j > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{}", n.0)?;
            }
        }
        Ok(())
    }
}

impl FromStr for ShardMap {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut epoch = None;
        let mut nodes = None;
        let mut groups = None;
        for field in s.split(';') {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| format!("placement codec: field {field:?} has no '='"))?;
            match k.trim() {
                "epoch" => {
                    epoch = Some(
                        v.trim()
                            .parse::<u64>()
                            .map_err(|e| format!("placement codec: bad epoch: {e}"))?,
                    );
                }
                "nodes" => {
                    nodes = Some(
                        v.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("placement codec: bad node count: {e}"))?,
                    );
                }
                "groups" => {
                    let parsed: Result<Vec<Vec<NodeId>>, String> =
                        v.split('|')
                            .map(|g| {
                                g.split(',')
                                    .map(|n| {
                                        n.trim().parse::<u16>().map(NodeId).map_err(|e| {
                                            format!("placement codec: bad node id: {e}")
                                        })
                                    })
                                    .collect()
                            })
                            .collect();
                    groups = Some(parsed?);
                }
                other => return Err(format!("placement codec: unknown field {other:?}")),
            }
        }
        let nodes = nodes.ok_or("placement codec: missing nodes=")?;
        let groups = groups.ok_or("placement codec: missing groups=")?;
        if groups.is_empty() || groups.iter().any(Vec::is_empty) {
            return Err("placement codec: empty group".into());
        }
        for g in &groups {
            for n in g {
                if n.0 as usize >= nodes {
                    return Err(format!("placement codec: node {n} out of range"));
                }
            }
        }
        let mut map = ShardMap::explicit(nodes, groups);
        map.epoch = epoch.unwrap_or(1);
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_maps_to_exactly_one_shard() {
        let map = ShardMap::uniform(16, 64, 4);
        for k in 0..10_000u64 {
            let s = map.shard_of(Key(k));
            assert!(s.0 < map.n_shards());
            // Deterministic: the same key always lands on the same shard.
            assert_eq!(map.shard_of(Key(k)), s);
            assert_eq!(map.replicas_of_key(Key(k)).len(), 4);
        }
    }

    #[test]
    fn uniform_disjoint_when_nodes_divide_evenly() {
        let map = ShardMap::uniform(16, 64, 4);
        assert!(map.is_disjoint());
        assert_eq!(
            map.replicas_of_shard(ShardId(0)),
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(
            map.replicas_of_shard(ShardId(15)),
            &[NodeId(60), NodeId(61), NodeId(62), NodeId(63)]
        );
        assert_eq!(map.sole_shard_on(NodeId(61)), Some(ShardId(15)));
    }

    #[test]
    fn uniform_ring_matches_legacy_replication_factor() {
        // uniform(n, n, k) must equal the legacy `replication = Some(k)`
        // placement: k consecutive nodes starting at key % n.
        let (n, k) = (5usize, 3u16);
        let map = ShardMap::uniform(n as u32, n, k);
        for key in 0..100u64 {
            let start = (key % n as u64) as usize;
            let want: Vec<NodeId> = (0..k as usize)
                .map(|i| NodeId(((start + i) % n) as u16))
                .collect();
            assert_eq!(map.replicas_of_key(Key(key)), &want[..], "key {key}");
        }
        assert!(!map.is_disjoint());
    }

    #[test]
    fn single_replicates_everywhere() {
        let map = ShardMap::single(5);
        assert_eq!(map.n_shards(), 1);
        for key in [0u64, 1, 99] {
            assert_eq!(map.replicas_of_key(Key(key)).len(), 5);
            assert!(map.is_replica(NodeId(4), Key(key)));
        }
    }

    #[test]
    fn serving_prefers_origin_then_home() {
        let map = ShardMap::uniform(2, 4, 2); // s0: n0,n1; s1: n2,n3
        let k0 = Key(0); // shard 0
        let k1 = Key(1); // shard 1
        assert_eq!(map.serving(NodeId(1), k0), NodeId(1));
        assert_eq!(map.serving(NodeId(1), k1), NodeId(2));
        assert_eq!(map.serving(NodeId(3), k0), NodeId(0));
    }

    #[test]
    fn epoch_bumps_are_monotonic() {
        let mut map = ShardMap::uniform(4, 8, 2);
        let mut last = map.epoch();
        for _ in 0..10 {
            let next = map.bump_epoch();
            assert!(next > last, "epoch must strictly increase");
            last = next;
        }
    }

    #[test]
    fn peers_share_a_group() {
        let map = ShardMap::uniform(2, 4, 2);
        assert_eq!(
            map.peers_of(NodeId(0)).into_iter().collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
        let ring = ShardMap::uniform(5, 5, 3);
        assert!(ring.peers_of(NodeId(0)).len() >= 3);
    }

    #[test]
    fn codec_round_trips() {
        let mut map = ShardMap::uniform(3, 6, 2);
        map.bump_epoch();
        let text = map.to_string();
        let back: ShardMap = text.parse().expect("codec parses");
        assert_eq!(back, map);
        assert_eq!(back.epoch(), 2);
    }

    #[test]
    fn parse_spec_accepts_both_forms() {
        let uni = ShardMap::parse_spec("16x4", 64).expect("SxK");
        assert_eq!(uni, ShardMap::uniform(16, 64, 4));
        let explicit = ShardMap::parse_spec("epoch=1;nodes=4;groups=0,1|2,3", 4).expect("codec");
        assert_eq!(explicit, ShardMap::uniform(2, 4, 2));
        assert!(ShardMap::parse_spec("0x4", 64).is_err());
        assert!(ShardMap::parse_spec("4x9", 8).is_err());
        assert!(ShardMap::parse_spec("garbage", 8).is_err());
    }

    #[test]
    fn remove_node_lists_under_replicated_shards() {
        let mut map = ShardMap::uniform(2, 4, 2); // s0: n0,n1  s1: n2,n3
        let e0 = map.epoch();
        let short = map.remove_node(NodeId(1)).expect("removable");
        assert_eq!(short, vec![ShardId(0)]);
        assert_eq!(map.epoch(), e0 + 1, "removal is a view change");
        assert_eq!(map.replicas_of_shard(ShardId(0)), &[NodeId(0)]);
        assert_eq!(map.under_replicated(2), vec![ShardId(0)]);
        // Removing a node that hosts nothing is a no-op, epoch included.
        assert_eq!(map.remove_node(NodeId(1)), Ok(vec![]));
        assert_eq!(map.epoch(), e0 + 1);
    }

    #[test]
    fn last_replica_cannot_be_removed() {
        let mut map = ShardMap::explicit(2, vec![vec![NodeId(0)], vec![NodeId(1)]]);
        let err = map.remove_node(NodeId(0)).unwrap_err();
        assert!(err.contains("no replicas"), "{err}");
        assert_eq!(map.replicas_of_shard(ShardId(0)), &[NodeId(0)], "untouched");
    }

    #[test]
    fn add_replica_is_the_epoch_gated_cutover() {
        let mut map = ShardMap::uniform(2, 4, 2);
        map.remove_node(NodeId(1)).unwrap(); // epoch 2
        let e = map.add_replica(ShardId(0), NodeId(3)).expect("cutover");
        assert_eq!(e, 3);
        assert_eq!(map.replicas_of_shard(ShardId(0)), &[NodeId(0), NodeId(3)]);
        assert!(map.under_replicated(2).is_empty());
        assert!(map.add_replica(ShardId(0), NodeId(3)).is_err(), "duplicate");
        assert!(map.add_replica(ShardId(0), NodeId(9)).is_err(), "range");
    }

    #[test]
    fn donor_prefers_home_and_honors_exclusions() {
        let map = ShardMap::uniform(1, 3, 3);
        assert_eq!(map.donor_for(ShardId(0), &[]), Some(NodeId(0)));
        assert_eq!(map.donor_for(ShardId(0), &[NodeId(0)]), Some(NodeId(1)));
        assert_eq!(
            map.donor_for(ShardId(0), &[NodeId(0), NodeId(1), NodeId(2)]),
            None
        );
    }

    #[test]
    fn codec_round_trips_non_uniform_post_rereplication_map() {
        // A map as re-replication leaves it: one group grown to 3, one
        // shrunk to 1 — group sizes differ, order is not sorted.
        let mut map = ShardMap::uniform(2, 4, 2);
        map.remove_node(NodeId(2)).unwrap();
        map.add_replica(ShardId(1), NodeId(0)).unwrap();
        map.add_replica(ShardId(0), NodeId(3)).unwrap();
        assert_eq!(map.epoch(), 4);
        assert!(!map.is_disjoint());
        let text = map.to_string();
        let back: ShardMap = text.parse().expect("codec parses");
        assert_eq!(back, map, "groups, order, and epoch all survive");
        assert_eq!(back.epoch(), 4);
        assert_eq!(
            back.replicas_of_shard(ShardId(1)),
            &[NodeId(3), NodeId(0)],
            "replica order (home first) survives the round trip"
        );
    }

    #[test]
    fn explicit_validates_groups() {
        let map = ShardMap::explicit(4, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        assert_eq!(map.replication_factor(), 2);
        assert_eq!(map.shards_on(NodeId(2)), vec![ShardId(1)]);
        assert!(std::panic::catch_unwind(|| {
            ShardMap::explicit(2, vec![vec![NodeId(0), NodeId(0)]])
        })
        .is_err());
    }
}
