//! Consistency, persistency, and combined DDP model enums.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Distributed data consistency models.
///
/// The paper (and therefore this reproduction) develops detailed algorithms
/// only for [`ConsistencyModel::Linearizable`]; the enum exists so that the
/// configuration surface matches the DDP framework of Kokolis et al., which
/// the paper builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConsistencyModel {
    /// Total order of writes; reads/writes ordered by timestamps. A write
    /// response returns only when all volatile replicas have been updated.
    #[default]
    Linearizable,
}

impl fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyModel::Linearizable => write!(f, "Lin"),
        }
    }
}

/// The five persistency models of §II-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PersistencyModel {
    /// Synchronous: a write persists when the local volatile replica is
    /// updated; a single ACK/VAL pair covers both consistency and
    /// persistency.
    Synchronous,
    /// Strict: the write is persisted in all replica nodes by the time the
    /// response returns; consistency and persistency are decoupled into
    /// ACK_C/ACK_P and VAL_C/VAL_P.
    Strict,
    /// Read-Enforced: all updated replicas are persisted by the time any of
    /// them is read; the write response returns after all ACK_Cs, but reads
    /// are enabled (VALs sent / RDLock released) only after all ACK_Ps.
    ReadEnforced,
    /// Eventual: replicas persist at some point in the future; no message
    /// exchange tracks persistency.
    Eventual,
    /// Scope: as Eventual within a scope, plus a `[PERSIST]sc` transaction
    /// that flushes the whole scope before responding.
    Scope,
}

impl PersistencyModel {
    /// All five models, in the order the paper's figures list them.
    pub const ALL: [PersistencyModel; 5] = [
        PersistencyModel::Synchronous,
        PersistencyModel::Strict,
        PersistencyModel::ReadEnforced,
        PersistencyModel::Eventual,
        PersistencyModel::Scope,
    ];

    /// Whether consistency and persistency use *separate* acknowledgement
    /// messages (ACK_C/ACK_P) rather than one combined ACK.
    ///
    /// True for Strict, Read-Enforced, Eventual and Scope; only Synchronous
    /// folds both into a single ACK (Figure 2 vs Figure 3).
    #[must_use]
    pub fn split_acks(self) -> bool {
        !matches!(self, PersistencyModel::Synchronous)
    }

    /// Whether the local NVM persist sits in the critical path of a write
    /// (Figure 3: only Synchronous and Strict; the others persist in the
    /// background).
    #[must_use]
    pub fn persist_in_critical_path(self) -> bool {
        matches!(
            self,
            PersistencyModel::Synchronous | PersistencyModel::Strict
        )
    }

    /// Whether the protocol exchanges persistency acknowledgements at all.
    /// Eventual and Scope writes exchange none (Scope tracks persistency
    /// only at `[PERSIST]sc` boundaries).
    #[must_use]
    pub fn tracks_persist_acks(self) -> bool {
        matches!(
            self,
            PersistencyModel::Synchronous
                | PersistencyModel::Strict
                | PersistencyModel::ReadEnforced
        )
    }

    /// Whether `handleObsolete` runs `PersistencySpin()` in addition to
    /// `ConsistencySpin()` (Figure 3: dropped for Eventual and Scope).
    #[must_use]
    pub fn obsolete_waits_for_persist(self) -> bool {
        self.tracks_persist_acks()
    }

    /// Short label as used in the paper's charts, e.g. `Synch`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PersistencyModel::Synchronous => "Synch",
            PersistencyModel::Strict => "Strict",
            PersistencyModel::ReadEnforced => "REnf",
            PersistencyModel::Eventual => "Event",
            PersistencyModel::Scope => "Scope",
        }
    }
}

impl fmt::Display for PersistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A Distributed Data Persistency model: one consistency model combined
/// with one persistency model, written `<Lin, Synch>` etc. in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DdpModel {
    /// The consistency half (always Linearizable in this reproduction).
    pub consistency: ConsistencyModel,
    /// The persistency half.
    pub persistency: PersistencyModel,
}

impl DdpModel {
    /// Creates a `<Lin, persistency>` model.
    #[must_use]
    pub fn lin(persistency: PersistencyModel) -> Self {
        DdpModel {
            consistency: ConsistencyModel::Linearizable,
            persistency,
        }
    }

    /// All five `<Lin, *>` combinations evaluated by the paper.
    #[must_use]
    pub fn all_lin() -> [DdpModel; 5] {
        PersistencyModel::ALL.map(DdpModel::lin)
    }
}

impl Default for DdpModel {
    fn default() -> Self {
        DdpModel::lin(PersistencyModel::Synchronous)
    }
}

impl fmt::Display for DdpModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.consistency, self.persistency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = PersistencyModel::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, ["Synch", "Strict", "REnf", "Event", "Scope"]);
    }

    #[test]
    fn only_synch_has_combined_acks() {
        for m in PersistencyModel::ALL {
            assert_eq!(
                m.split_acks(),
                m != PersistencyModel::Synchronous,
                "model {m}"
            );
        }
    }

    #[test]
    fn critical_path_persist_is_synch_and_strict() {
        assert!(PersistencyModel::Synchronous.persist_in_critical_path());
        assert!(PersistencyModel::Strict.persist_in_critical_path());
        assert!(!PersistencyModel::ReadEnforced.persist_in_critical_path());
        assert!(!PersistencyModel::Eventual.persist_in_critical_path());
        assert!(!PersistencyModel::Scope.persist_in_critical_path());
    }

    #[test]
    fn persist_ack_tracking() {
        assert!(PersistencyModel::ReadEnforced.tracks_persist_acks());
        assert!(!PersistencyModel::Eventual.tracks_persist_acks());
        assert!(!PersistencyModel::Scope.tracks_persist_acks());
    }

    #[test]
    fn display_combined() {
        assert_eq!(
            DdpModel::lin(PersistencyModel::ReadEnforced).to_string(),
            "<Lin,REnf>"
        );
    }

    #[test]
    fn all_lin_yields_five_distinct() {
        let all = DdpModel::all_lin();
        assert_eq!(all.len(), 5);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
