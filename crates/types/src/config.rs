//! Configuration: the Table II (real cluster) and Table III (simulated
//! system) parameter sets.

use crate::chaos::{ChaosSpec, FaultSpec};
use crate::shard::ShardMap;
use serde::{Deserialize, Serialize};

/// Parameters of the MINOS-B distributed machine (Table II), used by the
/// threaded cluster runtime `minos-cluster`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes (paper: 5).
    pub nodes: usize,
    /// Busy worker cores per node (paper: 5).
    pub cores_per_node: usize,
    /// Emulated NVM persist latency per KB, in nanoseconds (paper: 1295 ns
    /// to persist 1 KB, from prior NVM characterization work).
    pub nvm_persist_ns_per_kb: u64,
    /// Injected one-way message latency in nanoseconds, standing in for the
    /// eRPC + FDR InfiniBand path of the CloudLab cluster (~2 µs one-way).
    pub wire_latency_ns: u64,
    /// Heartbeat timeout for failure detection, in nanoseconds.
    pub failure_timeout_ns: u64,
    /// Transport-level message batching (the Figure 12 `batching` NIC
    /// capability): the messages a node emits while handling one event
    /// are coalesced into per-destination frames, each deposited into the
    /// transport as a single enqueue.
    pub batching: bool,
    /// Transport-level broadcast (the Figure 12 `broadcast` NIC
    /// capability): a follower fan-out leaves the node as one enqueue and
    /// is expanded to all destinations inside the transport.
    pub broadcast: bool,
    /// Deterministic message-level chaos schedule (`None` = no chaos),
    /// applied by the `ChaosNet` transport middleware. Set by the
    /// `minos-check` torture harness.
    pub chaos: Option<ChaosSpec>,
    /// Deliberate protocol bug to arm (`None` = correct protocol). Only
    /// honored when `minos-core` is compiled with its `fault-injection`
    /// feature; silently ignored otherwise.
    pub fault: Option<FaultSpec>,
    /// Key-space placement map (`None` = the paper's single fully
    /// replicated group). When set, each node hosts only its shards'
    /// records and the cluster facade routes every operation to a
    /// replica of its key's shard.
    pub placement: Option<ShardMap>,
}

impl ClusterConfig {
    /// The CloudLab configuration of Table II.
    #[must_use]
    pub fn cloudlab() -> Self {
        ClusterConfig {
            nodes: 5,
            cores_per_node: 5,
            nvm_persist_ns_per_kb: 1295,
            wire_latency_ns: 2_000,
            failure_timeout_ns: 50_000_000,
            batching: false,
            broadcast: false,
            chaos: None,
            fault: None,
            placement: None,
        }
    }

    /// Same as [`ClusterConfig::cloudlab`] with a different node count.
    #[must_use]
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder-style toggle for transport-level message batching.
    #[must_use]
    pub fn with_batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// Builder-style toggle for transport-level broadcast.
    #[must_use]
    pub fn with_broadcast(mut self, on: bool) -> Self {
        self.broadcast = on;
        self
    }

    /// Builder-style chaos-schedule install.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Builder-style fault arming.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Builder-style placement-map install. Also aligns `nodes` with the
    /// map so the two can never disagree.
    #[must_use]
    pub fn with_placement(mut self, map: ShardMap) -> Self {
        self.nodes = map.n_nodes();
        self.placement = Some(map);
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::cloudlab()
    }
}

/// Parameters of the simulated distributed machine (Table III), used by the
/// discrete-event simulator in `minos-net`.
///
/// All latencies are in nanoseconds; all bandwidths in bytes per second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of nodes (paper default: 5; sweeps use 2–16).
    pub nodes: usize,
    /// Host cores per node (paper: 5).
    pub host_cores: usize,
    /// SmartNIC cores (paper: 8).
    pub snic_cores: usize,
    /// Host synchronization (compare-and-swap) latency (paper: 42 ns).
    pub host_sync_ns: u64,
    /// SmartNIC synchronization latency (paper: 105 ns).
    pub snic_sync_ns: u64,
    /// PCIe latency between host and (Smart)NIC (paper: 500 ns).
    pub pcie_latency_ns: u64,
    /// PCIe bandwidth (paper: 6.25 GB/s).
    pub pcie_bw_bytes_per_s: u64,
    /// Network link latency between (Smart)NICs (paper: 150 ns).
    pub link_latency_ns: u64,
    /// Network link bandwidth (paper: 7 GB/s).
    pub link_bw_bytes_per_s: u64,
    /// Latency to enqueue/write 1 KB into the vFIFO (paper: 465 ns).
    pub vfifo_ns_per_kb: u64,
    /// Latency to enqueue/write 1 KB into the dFIFO (paper: 1295 ns — it is
    /// NVM-backed).
    pub dfifo_ns_per_kb: u64,
    /// vFIFO capacity in entries (paper default: 5). `None` = unbounded.
    pub vfifo_entries: Option<usize>,
    /// dFIFO capacity in entries (paper default: 5). `None` = unbounded.
    pub dfifo_entries: Option<usize>,
    /// Cost to prepare and send one INV from a NIC (paper: 200 ns).
    pub send_inv_ns: u64,
    /// Cost to prepare and send one ACK from a NIC (paper: 100 ns).
    pub send_ack_ns: u64,
    /// Gap between consecutive sends of the same message to different
    /// destinations when broadcast support is absent (paper: 100 ns).
    pub inter_msg_gap_ns: u64,
    /// Host NVM persist latency per KB (paper: 1295 ns; Fig 14 sweeps
    /// 100 ns – 100 µs).
    pub nvm_persist_ns_per_kb: u64,
    /// Host LLC update latency per KB (calibrated, not in Table III; the
    /// paper sets memory-hierarchy latencies from CloudLab measurements).
    pub llc_update_ns_per_kb: u64,
    /// One-way latency of the host↔SmartNIC selective-coherence bus for one
    /// metadata line transfer (MSI snoop over a dedicated bus; calibrated).
    pub coherence_snoop_ns: u64,
    /// Extra cost for the SmartNIC to unpack a batched message when it
    /// cannot broadcast (the Fig 12 "batching without broadcast hurts"
    /// effect; calibrated).
    pub batch_unpack_ns: u64,
    /// Extra node-to-node round-trip latency injected for the DeathStar
    /// end-to-end experiments (paper Fig 11: 500 µs datacenter RTT);
    /// zero for all other experiments.
    pub datacenter_rtt_ns: u64,
    /// Virtual-clock period between resource-telemetry samples
    /// (FIFO occupancy, queue depths, lock-table size, in-flight ops).
    /// `0` disables sampling; event-driven counters (PCIe bytes, batch
    /// fill) accumulate regardless.
    pub telemetry_tick_ns: u64,
}

impl SimConfig {
    /// The Table III defaults: 5 nodes, BlueField-2-derived SmartNIC
    /// latencies, CloudLab-derived host latencies.
    #[must_use]
    pub fn paper_defaults() -> Self {
        SimConfig {
            nodes: 5,
            host_cores: 5,
            snic_cores: 8,
            host_sync_ns: 42,
            snic_sync_ns: 105,
            pcie_latency_ns: 500,
            pcie_bw_bytes_per_s: 6_250_000_000,
            link_latency_ns: 150,
            link_bw_bytes_per_s: 7_000_000_000,
            vfifo_ns_per_kb: 465,
            dfifo_ns_per_kb: 1295,
            vfifo_entries: Some(5),
            dfifo_entries: Some(5),
            send_inv_ns: 200,
            send_ack_ns: 100,
            inter_msg_gap_ns: 100,
            nvm_persist_ns_per_kb: 1295,
            llc_update_ns_per_kb: 110,
            coherence_snoop_ns: 60,
            batch_unpack_ns: 700,
            datacenter_rtt_ns: 0,
            telemetry_tick_ns: 1_000,
        }
    }

    /// Builder-style telemetry sampling-period override (`0` disables
    /// level sampling).
    #[must_use]
    pub fn with_telemetry_tick(mut self, tick_ns: u64) -> Self {
        self.telemetry_tick_ns = tick_ns;
        self
    }

    /// Builder-style node-count override.
    #[must_use]
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder-style vFIFO/dFIFO size override (`None` = unbounded).
    #[must_use]
    pub fn with_fifo_entries(mut self, entries: Option<usize>) -> Self {
        self.vfifo_entries = entries;
        self.dfifo_entries = entries;
        self
    }

    /// Builder-style *host* persist-latency override (ns per KB), used by
    /// the Figure 14 durable-medium sweep. The SmartNIC's dFIFO write
    /// latency is a property of the NIC hardware and is deliberately left
    /// unchanged — that is why MINOS-O's advantage grows as the host
    /// medium slows down.
    #[must_use]
    pub fn with_persist_ns_per_kb(mut self, ns: u64) -> Self {
        self.nvm_persist_ns_per_kb = ns;
        self
    }

    /// Time to move `bytes` across PCIe: latency + size/bandwidth.
    #[must_use]
    pub fn pcie_transfer_ns(&self, bytes: u64) -> u64 {
        self.pcie_latency_ns + bytes * 1_000_000_000 / self.pcie_bw_bytes_per_s
    }

    /// Time to move `bytes` across the inter-NIC network link.
    #[must_use]
    pub fn link_transfer_ns(&self, bytes: u64) -> u64 {
        self.link_latency_ns + bytes * 1_000_000_000 / self.link_bw_bytes_per_s
    }

    /// Time to persist `bytes` to host NVM.
    #[must_use]
    pub fn persist_ns(&self, bytes: u64) -> u64 {
        scale_per_kb(self.nvm_persist_ns_per_kb, bytes)
    }

    /// Time to write `bytes` into the vFIFO.
    #[must_use]
    pub fn vfifo_write_ns(&self, bytes: u64) -> u64 {
        scale_per_kb(self.vfifo_ns_per_kb, bytes)
    }

    /// Time to write `bytes` into the dFIFO.
    #[must_use]
    pub fn dfifo_write_ns(&self, bytes: u64) -> u64 {
        scale_per_kb(self.dfifo_ns_per_kb, bytes)
    }

    /// Time to update `bytes` in the host LLC.
    #[must_use]
    pub fn llc_update_ns(&self, bytes: u64) -> u64 {
        scale_per_kb(self.llc_update_ns_per_kb, bytes)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_defaults()
    }
}

/// Scales a per-KB latency to an arbitrary byte count, with a 1-line
/// (64-byte) minimum so tiny metadata writes are not free.
fn scale_per_kb(ns_per_kb: u64, bytes: u64) -> u64 {
    let bytes = bytes.max(64);
    (ns_per_kb * bytes).div_ceil(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_iii() {
        let c = SimConfig::paper_defaults();
        assert_eq!(c.nodes, 5);
        assert_eq!(c.host_cores, 5);
        assert_eq!(c.snic_cores, 8);
        assert_eq!(c.host_sync_ns, 42);
        assert_eq!(c.snic_sync_ns, 105);
        assert_eq!(c.pcie_latency_ns, 500);
        assert_eq!(c.link_latency_ns, 150);
        assert_eq!(c.vfifo_ns_per_kb, 465);
        assert_eq!(c.dfifo_ns_per_kb, 1295);
        assert_eq!(c.vfifo_entries, Some(5));
        assert_eq!(c.send_inv_ns, 200);
        assert_eq!(c.send_ack_ns, 100);
        assert_eq!(c.inter_msg_gap_ns, 100);
    }

    #[test]
    fn cloudlab_matches_table_ii() {
        let c = ClusterConfig::cloudlab();
        assert_eq!(c.nodes, 5);
        assert_eq!(c.cores_per_node, 5);
        assert_eq!(c.nvm_persist_ns_per_kb, 1295);
    }

    #[test]
    fn persist_scales_with_size() {
        let c = SimConfig::paper_defaults();
        assert_eq!(c.persist_ns(1024), 1295);
        assert_eq!(c.persist_ns(2048), 2590);
        // Sub-line writes pay at least one 64-byte line.
        assert_eq!(c.persist_ns(1), c.persist_ns(64));
        assert!(c.persist_ns(64) > 0);
    }

    #[test]
    fn pcie_transfer_combines_latency_and_bw() {
        let c = SimConfig::paper_defaults();
        // 6.25 GB/s => 6.25 bytes/ns => 1 KB ~ 163 ns on the wire.
        let t = c.pcie_transfer_ns(1024);
        assert!(t > 500 && t < 700, "got {t}");
    }

    #[test]
    fn builders_override() {
        let c = SimConfig::paper_defaults()
            .with_nodes(16)
            .with_fifo_entries(None)
            .with_persist_ns_per_kb(100_000);
        assert_eq!(c.nodes, 16);
        assert_eq!(c.vfifo_entries, None);
        assert_eq!(c.persist_ns(1024), 100_000);
        assert_eq!(c.dfifo_ns_per_kb, 1295, "dFIFO hardware unchanged");
    }
}
