//! Record metadata (Figure 1(a)) and the record itself.

use crate::{Key, Ts, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-record metadata, exactly the five fields of Figure 1(a).
///
/// * `rd_lock_owner` — which client-write (identified by its `TS_WR`)
///   currently holds the read lock, or `None` when released (the paper's
///   `<-1,-1>`);
/// * `wr_lock` — whether the write lock protecting local-writes is held
///   (used by MINOS-B only; MINOS-O eliminates it via the vFIFO);
/// * `volatile_ts` — the record's version in local volatile memory;
/// * `glb_volatile_ts` — the machine-wide volatile version (consistency);
/// * `glb_durable_ts` — the machine-wide durable version (persistency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RecordMeta {
    /// `RDLock_Owner`: `Some(ts)` when held by the client-write with
    /// timestamp `ts`, `None` when free.
    pub rd_lock_owner: Option<Ts>,
    /// `WRLock`: taken while a local-write updates the LLC (MINOS-B).
    pub wr_lock: bool,
    /// `volatileTS`.
    pub volatile_ts: Ts,
    /// `glb_volatileTS`.
    pub glb_volatile_ts: Ts,
    /// `glb_durableTS`.
    pub glb_durable_ts: Ts,
}

impl RecordMeta {
    /// Fresh metadata for a never-written record.
    #[must_use]
    pub fn new() -> Self {
        RecordMeta::default()
    }

    /// The `Obsolete(TS_WR)` primitive of §III-A: true when the client
    /// write carrying `ts` is older than the record's local volatile
    /// version.
    #[must_use]
    pub fn is_obsolete(&self, ts: Ts) -> bool {
        ts < self.volatile_ts
    }

    /// The "Snatch RDLock" operation of Figure 2, Line 8.
    ///
    /// Returns `true` if this client-write now owns the lock:
    /// (i) free → grab; (ii) held by an older write → snatch;
    /// (iii) held by a younger write → continue without owning.
    pub fn snatch_rd_lock(&mut self, ts: Ts) -> bool {
        match self.rd_lock_owner {
            None => {
                self.rd_lock_owner = Some(ts);
                true
            }
            Some(owner) if ts > owner => {
                self.rd_lock_owner = Some(ts);
                true
            }
            Some(_) => false,
        }
    }

    /// Grabs the RDLock only if it is currently free — the non-snatching
    /// variant used by the snatch-ablation study. Returns true on grab.
    pub fn try_rd_lock(&mut self, ts: Ts) -> bool {
        if self.rd_lock_owner.is_none() {
            self.rd_lock_owner = Some(ts);
            true
        } else {
            false
        }
    }

    /// Releases the RDLock *iff* the client-write with `ts` still owns it
    /// (Figure 2, Lines 20–21 / 42–43). Returns whether a release happened.
    pub fn rd_unlock_if_owner(&mut self, ts: Ts) -> bool {
        if self.rd_lock_owner == Some(ts) {
            self.rd_lock_owner = None;
            true
        } else {
            false
        }
    }

    /// Whether a read transaction may currently proceed (§III-D: a read is
    /// only stalled while the RDLock is taken).
    #[must_use]
    pub fn readable(&self) -> bool {
        self.rd_lock_owner.is_none()
    }

    /// Monotonically advances `glb_volatileTS` (it reflects the newest
    /// globally-consistent write; VALs for snatched writes must not move it
    /// backwards).
    pub fn raise_glb_volatile(&mut self, ts: Ts) {
        if ts > self.glb_volatile_ts {
            self.glb_volatile_ts = ts;
        }
    }

    /// Monotonically advances `glb_durableTS`.
    pub fn raise_glb_durable(&mut self, ts: Ts) {
        if ts > self.glb_durable_ts {
            self.glb_durable_ts = ts;
        }
    }

    /// Monotonically advances `volatileTS` (used when applying a
    /// local-write; callers have already passed the obsoleteness check, the
    /// max keeps the invariant under re-entrancy).
    pub fn raise_volatile(&mut self, ts: Ts) {
        if ts > self.volatile_ts {
            self.volatile_ts = ts;
        }
    }
}

impl fmt::Display for RecordMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let owner = match self.rd_lock_owner {
            Some(ts) => ts.to_string(),
            None => crate::TS_UNLOCKED.to_string(),
        };
        write!(
            f,
            "rd={owner} wr={} v={} gv={} gd={}",
            self.wr_lock as u8, self.volatile_ts, self.glb_volatile_ts, self.glb_durable_ts
        )
    }
}

/// A key-value record plus its protocol metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Record {
    /// The record's key.
    pub key: Key,
    /// Current value in local volatile memory (the "LLC" copy).
    pub value: Value,
    /// Protocol metadata.
    pub meta: RecordMeta,
}

impl Record {
    /// Creates a record with zeroed metadata.
    #[must_use]
    pub fn new(key: Key, value: Value) -> Self {
        Record {
            key,
            value,
            meta: RecordMeta::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn ts(n: u16, v: u32) -> Ts {
        Ts::new(NodeId(n), v)
    }

    #[test]
    fn obsolete_compares_against_volatile() {
        let mut m = RecordMeta::new();
        m.volatile_ts = ts(1, 5);
        assert!(m.is_obsolete(ts(0, 5)));
        assert!(m.is_obsolete(ts(9, 4)));
        assert!(!m.is_obsolete(ts(2, 5)));
        assert!(!m.is_obsolete(ts(1, 5)), "equal ts is not obsolete");
    }

    #[test]
    fn snatch_grabs_free_lock() {
        let mut m = RecordMeta::new();
        assert!(m.snatch_rd_lock(ts(1, 1)));
        assert_eq!(m.rd_lock_owner, Some(ts(1, 1)));
    }

    #[test]
    fn snatch_steals_from_older() {
        let mut m = RecordMeta::new();
        assert!(m.snatch_rd_lock(ts(1, 1)));
        assert!(m.snatch_rd_lock(ts(2, 1)), "younger snatches");
        assert_eq!(m.rd_lock_owner, Some(ts(2, 1)));
    }

    #[test]
    fn snatch_yields_to_younger() {
        let mut m = RecordMeta::new();
        assert!(m.snatch_rd_lock(ts(3, 2)));
        assert!(!m.snatch_rd_lock(ts(1, 1)), "older must not snatch");
        assert_eq!(m.rd_lock_owner, Some(ts(3, 2)));
    }

    #[test]
    fn only_owner_unlocks() {
        let mut m = RecordMeta::new();
        m.snatch_rd_lock(ts(1, 1));
        assert!(!m.rd_unlock_if_owner(ts(2, 1)));
        assert!(!m.readable());
        assert!(m.rd_unlock_if_owner(ts(1, 1)));
        assert!(m.readable());
    }

    #[test]
    fn glb_timestamps_are_monotone() {
        let mut m = RecordMeta::new();
        m.raise_glb_volatile(ts(1, 3));
        m.raise_glb_volatile(ts(0, 2));
        assert_eq!(m.glb_volatile_ts, ts(1, 3));
        m.raise_glb_durable(ts(1, 3));
        m.raise_glb_durable(ts(1, 2));
        assert_eq!(m.glb_durable_ts, ts(1, 3));
        m.raise_volatile(ts(2, 1));
        m.raise_volatile(ts(1, 1));
        assert_eq!(m.volatile_ts, ts(2, 1));
    }

    #[test]
    fn display_shows_unlocked_sentinel() {
        let m = RecordMeta::new();
        assert!(m.to_string().contains("<-1,-1>"));
    }
}
