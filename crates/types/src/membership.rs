//! Live membership: per-node serving leases and epoch-versioned views.
//!
//! MINOS's recovery story (§III-E) brings a crashed replica back by
//! shipping it the durable-log suffix it missed; this module supplies the
//! cluster-level bookkeeping that makes such a rejoin *safe to observe*:
//!
//! * every node holds a **serving lease** ([`MembershipView::renew`]) and
//!   is only routed client operations while the lease is live;
//! * the view carries an **epoch** that bumps on every serving-set change
//!   (a node marked down, a rejoin completing, a re-replication cutover),
//!   so stale routing or catch-up deltas can be rejected by comparing
//!   epochs — the same epoch that versions the
//!   [`ShardMap`](crate::ShardMap) placement;
//! * a rejoining node moves through an explicit **catch-up state**
//!   ([`NodeState::CatchingUp`]) during which it replays its own durable
//!   log and fetches the missed suffix from a group peer; it re-enters
//!   the serving set only at [`MembershipView::complete_rejoin`], which
//!   is the epoch-gated cutover point.
//!
//! The state machine per node:
//!
//! ```text
//!            lease expires / crash reported
//!   Serving ─────────────────────────────────▶ Down      (epoch += 1)
//!      ▲                                        │
//!      │ complete_rejoin (epoch += 1)           │ begin_rejoin
//!      │                                        ▼
//!      └──────────────────────────────────  CatchingUp
//!                                               │ crash mid-catch-up
//!                                               └──▶ Down (abort_rejoin,
//!                                                    no epoch change)
//! ```
//!
//! Epochs bump only on serving-set *changes*: entering catch-up does not
//! change who serves, so it does not bump; aborting a catch-up returns to
//! `Down` without ever having served, so it does not bump either.

use crate::shard::ShardMap;
use crate::ts::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a node stands in the membership state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Holding a live lease; routed client operations.
    Serving,
    /// Crashed or lease-expired; excluded from quorums and routing.
    Down,
    /// Replaying its durable log and fetching the missed suffix from a
    /// donor; not yet serving.
    CatchingUp,
}

/// Errors from membership transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipError {
    /// The node id is outside the view.
    UnknownNode(NodeId),
    /// The transition is invalid from the node's current state.
    BadState {
        /// The node whose transition was rejected.
        node: NodeId,
        /// Its state at the time.
        state: NodeState,
        /// The transition that was attempted.
        wanted: &'static str,
    },
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::UnknownNode(n) => write!(f, "node {n} is not in the view"),
            MembershipError::BadState {
                node,
                state,
                wanted,
            } => {
                write!(f, "node {node} is {state:?}; cannot {wanted}")
            }
        }
    }
}

impl std::error::Error for MembershipError {}

/// The epoch-versioned membership view: one state + lease per node.
///
/// Deterministic and time-free — callers supply `now_ns` explicitly, so
/// the threaded cluster can feed wall-clock time while tests and the DES
/// kernels feed virtual time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipView {
    /// View version; bumps on every serving-set change.
    epoch: u64,
    /// Lease duration granted by [`MembershipView::renew`].
    lease_ns: u64,
    states: BTreeMap<NodeId, NodeState>,
    /// Lease expiry instant per node; absent = no live lease.
    leases: BTreeMap<NodeId, u64>,
}

impl MembershipView {
    /// A fresh view over nodes `0..n_nodes`, all serving with leases
    /// granted at `now_ns` for `lease_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    #[must_use]
    pub fn new(n_nodes: usize, lease_ns: u64, now_ns: u64) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        let states = (0..n_nodes)
            .map(|i| (NodeId(i as u16), NodeState::Serving))
            .collect();
        let leases = (0..n_nodes)
            .map(|i| (NodeId(i as u16), now_ns.saturating_add(lease_ns)))
            .collect();
        MembershipView {
            epoch: 1,
            lease_ns,
            states,
            leases,
        }
    }

    /// The view epoch. Strictly monotonic across serving-set changes.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The lease duration granted on renewal.
    #[must_use]
    pub fn lease_ns(&self) -> u64 {
        self.lease_ns
    }

    /// A node's current state.
    ///
    /// # Errors
    ///
    /// [`MembershipError::UnknownNode`] for ids outside the view.
    pub fn state(&self, node: NodeId) -> Result<NodeState, MembershipError> {
        self.states
            .get(&node)
            .copied()
            .ok_or(MembershipError::UnknownNode(node))
    }

    /// True when `node` is serving (regardless of lease freshness — an
    /// expired lease is grounds for [`MembershipView::mark_down`], but
    /// the node serves until the view actually changes).
    #[must_use]
    pub fn is_serving(&self, node: NodeId) -> bool {
        self.states.get(&node) == Some(&NodeState::Serving)
    }

    /// The serving nodes, ascending.
    #[must_use]
    pub fn serving_nodes(&self) -> Vec<NodeId> {
        self.states
            .iter()
            .filter(|(_, s)| **s == NodeState::Serving)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Renews `node`'s lease to `now_ns + lease_ns`.
    ///
    /// A *late* renewal — after the old lease expired but before any
    /// failure detector called [`MembershipView::mark_down`] — succeeds:
    /// the node never left the serving set, so no view change happened
    /// and no epoch is burned. Renewal by a `Down` or `CatchingUp` node
    /// is rejected; such a node must go through the rejoin path.
    ///
    /// # Errors
    ///
    /// [`MembershipError::BadState`] unless the node is `Serving`;
    /// [`MembershipError::UnknownNode`] for ids outside the view.
    pub fn renew(&mut self, node: NodeId, now_ns: u64) -> Result<u64, MembershipError> {
        match self.state(node)? {
            NodeState::Serving => {
                let until = now_ns.saturating_add(self.lease_ns);
                self.leases.insert(node, until);
                Ok(until)
            }
            state => Err(MembershipError::BadState {
                node,
                state,
                wanted: "renew a serving lease",
            }),
        }
    }

    /// The expiry instant of `node`'s lease, if it holds one.
    #[must_use]
    pub fn lease_expiry(&self, node: NodeId) -> Option<u64> {
        self.leases.get(&node).copied()
    }

    /// Serving nodes whose lease has expired at `now_ns` — the failure
    /// detector's candidates for [`MembershipView::mark_down`]. A lease
    /// expiring exactly at `now_ns` is still live (expiry is exclusive).
    #[must_use]
    pub fn expired(&self, now_ns: u64) -> Vec<NodeId> {
        self.states
            .iter()
            .filter(|(n, s)| {
                **s == NodeState::Serving && self.leases.get(*n).is_none_or(|&until| until < now_ns)
            })
            .map(|(n, _)| *n)
            .collect()
    }

    /// Removes `node` from the serving set (crash reported or lease
    /// expired): revokes its lease and bumps the epoch. Idempotent — a
    /// second report of the same failure changes nothing and burns no
    /// epoch. Returns the epoch in force afterwards.
    ///
    /// # Errors
    ///
    /// [`MembershipError::UnknownNode`] for ids outside the view.
    pub fn mark_down(&mut self, node: NodeId) -> Result<u64, MembershipError> {
        match self.state(node)? {
            NodeState::Serving => {
                self.states.insert(node, NodeState::Down);
                self.leases.remove(&node);
                self.epoch += 1;
                Ok(self.epoch)
            }
            // Down stays down; a crash mid-catch-up is `abort_rejoin`'s
            // job, but tolerating it here keeps detectors simple.
            NodeState::Down | NodeState::CatchingUp => {
                self.states.insert(node, NodeState::Down);
                Ok(self.epoch)
            }
        }
    }

    /// Starts a rejoin: `Down` → `CatchingUp`. Returns the epoch the
    /// catch-up is pinned to — deltas shipped to the rejoiner are valid
    /// only while this epoch holds (the donor's group did not change
    /// under it).
    ///
    /// # Errors
    ///
    /// [`MembershipError::BadState`] unless the node is `Down`.
    pub fn begin_rejoin(&mut self, node: NodeId) -> Result<u64, MembershipError> {
        match self.state(node)? {
            NodeState::Down => {
                self.states.insert(node, NodeState::CatchingUp);
                Ok(self.epoch)
            }
            state => Err(MembershipError::BadState {
                node,
                state,
                wanted: "begin rejoin",
            }),
        }
    }

    /// Completes a rejoin: `CatchingUp` → `Serving` with a fresh lease;
    /// bumps the epoch (the serving set grew). Returns the new epoch.
    ///
    /// # Errors
    ///
    /// [`MembershipError::BadState`] unless the node is `CatchingUp`.
    pub fn complete_rejoin(&mut self, node: NodeId, now_ns: u64) -> Result<u64, MembershipError> {
        match self.state(node)? {
            NodeState::CatchingUp => {
                self.states.insert(node, NodeState::Serving);
                self.leases
                    .insert(node, now_ns.saturating_add(self.lease_ns));
                self.epoch += 1;
                Ok(self.epoch)
            }
            state => Err(MembershipError::BadState {
                node,
                state,
                wanted: "complete rejoin",
            }),
        }
    }

    /// Aborts a catch-up (the rejoiner crashed again mid-catch-up):
    /// `CatchingUp` → `Down`. The node never re-entered the serving set,
    /// so the epoch is unchanged.
    ///
    /// # Errors
    ///
    /// [`MembershipError::BadState`] unless the node is `CatchingUp`.
    pub fn abort_rejoin(&mut self, node: NodeId) -> Result<u64, MembershipError> {
        match self.state(node)? {
            NodeState::CatchingUp => {
                self.states.insert(node, NodeState::Down);
                Ok(self.epoch)
            }
            state => Err(MembershipError::BadState {
                node,
                state,
                wanted: "abort rejoin",
            }),
        }
    }

    /// Adopts `epoch` when it is newer (a cutover published by another
    /// node won the race). Returns true when the local epoch advanced.
    pub fn adopt_epoch(&mut self, epoch: u64) -> bool {
        if epoch > self.epoch {
            self.epoch = epoch;
            true
        } else {
            false
        }
    }
}

/// Control-plane view-change messages, carried out-of-band from the
/// protocol's [`Message`](crate::Message) stream (they change *routing*,
/// not record state). Encoded by
/// [`wire::encode_view_msg`](crate::wire::encode_view_msg).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewMsg {
    /// `node`'s lease now runs to `expires_at_ns`.
    LeaseRenew {
        /// The renewing node.
        node: NodeId,
        /// New expiry instant.
        expires_at_ns: u64,
    },
    /// `node` left the serving set; `epoch` is the view after the bump.
    NodeDown {
        /// The failed node.
        node: NodeId,
        /// Epoch in force after the removal.
        epoch: u64,
    },
    /// `node` started catching up, pinned to `epoch` — deltas are
    /// discarded if the epoch moves before the rejoin completes.
    RejoinStart {
        /// The rejoining node.
        node: NodeId,
        /// The epoch the catch-up is pinned to.
        epoch: u64,
    },
    /// `node` finished catch-up and serves again; `epoch` is the view
    /// after the bump.
    RejoinDone {
        /// The rejoined node.
        node: NodeId,
        /// Epoch in force after the rejoin.
        epoch: u64,
    },
    /// Re-replication cutover: adopt `map` (which carries its own
    /// placement epoch) iff it is newer than the local map's.
    InstallMap {
        /// The new placement, epoch included.
        map: ShardMap,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEASE: u64 = 1_000;

    #[test]
    fn fresh_view_serves_everyone() {
        let v = MembershipView::new(3, LEASE, 0);
        assert_eq!(v.epoch(), 1);
        assert_eq!(
            v.serving_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2)],
            "all serving"
        );
        assert!(v.expired(LEASE).is_empty(), "expiry is exclusive");
        assert_eq!(v.expired(LEASE + 1), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn renewal_extends_the_lease() {
        let mut v = MembershipView::new(2, LEASE, 0);
        assert_eq!(v.renew(NodeId(0), 900), Ok(900 + LEASE));
        assert_eq!(v.expired(1500), vec![NodeId(1)], "only the non-renewer");
    }

    #[test]
    fn late_renewal_races_the_detector_and_wins() {
        // The lease expired at 1000 but nobody marked the node down yet:
        // a renewal at 1200 keeps it serving with no epoch burned.
        let mut v = MembershipView::new(2, LEASE, 0);
        assert!(v.renew(NodeId(0), 1200).is_ok());
        assert_eq!(v.epoch(), 1);
        assert!(v.is_serving(NodeId(0)));
        assert!(!v.expired(1300).contains(&NodeId(0)));
    }

    #[test]
    fn down_node_cannot_renew() {
        let mut v = MembershipView::new(2, LEASE, 0);
        v.mark_down(NodeId(1)).unwrap();
        let err = v.renew(NodeId(1), 500).unwrap_err();
        assert!(matches!(err, MembershipError::BadState { .. }));
    }

    #[test]
    fn mark_down_bumps_once() {
        let mut v = MembershipView::new(3, LEASE, 0);
        assert_eq!(v.mark_down(NodeId(2)), Ok(2));
        assert_eq!(v.mark_down(NodeId(2)), Ok(2), "idempotent: no new epoch");
        assert_eq!(v.serving_nodes(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(v.lease_expiry(NodeId(2)), None, "lease revoked");
    }

    #[test]
    fn rejoin_walks_the_state_machine() {
        let mut v = MembershipView::new(2, LEASE, 0);
        v.mark_down(NodeId(1)).unwrap(); // epoch 2
        assert_eq!(v.begin_rejoin(NodeId(1)), Ok(2), "pinned to epoch 2");
        assert_eq!(v.state(NodeId(1)), Ok(NodeState::CatchingUp));
        assert!(!v.is_serving(NodeId(1)), "catch-up is not serving");
        assert_eq!(v.complete_rejoin(NodeId(1), 5_000), Ok(3));
        assert!(v.is_serving(NodeId(1)));
        assert_eq!(v.lease_expiry(NodeId(1)), Some(5_000 + LEASE));
    }

    #[test]
    fn second_crash_mid_catch_up_aborts_without_an_epoch() {
        let mut v = MembershipView::new(2, LEASE, 0);
        v.mark_down(NodeId(1)).unwrap(); // epoch 2
        v.begin_rejoin(NodeId(1)).unwrap();
        assert_eq!(v.abort_rejoin(NodeId(1)), Ok(2), "no epoch burned");
        assert_eq!(v.state(NodeId(1)), Ok(NodeState::Down));
        // The node can start over.
        assert_eq!(v.begin_rejoin(NodeId(1)), Ok(2));
        assert_eq!(v.complete_rejoin(NodeId(1), 9_000), Ok(3));
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let mut v = MembershipView::new(2, LEASE, 0);
        assert!(v.begin_rejoin(NodeId(0)).is_err(), "serving cannot rejoin");
        assert!(v.complete_rejoin(NodeId(0), 0).is_err());
        assert!(v.abort_rejoin(NodeId(0)).is_err());
        assert!(v.state(NodeId(9)).is_err(), "unknown node");
        v.mark_down(NodeId(0)).unwrap();
        assert!(
            v.complete_rejoin(NodeId(0), 0).is_err(),
            "must pass through catch-up"
        );
    }

    #[test]
    fn adopt_epoch_is_monotonic() {
        let mut v = MembershipView::new(2, LEASE, 0);
        assert!(v.adopt_epoch(7));
        assert_eq!(v.epoch(), 7);
        assert!(!v.adopt_epoch(3), "stale epochs are ignored");
        assert_eq!(v.epoch(), 7);
    }

    #[test]
    fn zero_lease_expires_immediately_but_renews() {
        let mut v = MembershipView::new(1, 0, 0);
        assert_eq!(v.expired(1), vec![NodeId(0)]);
        assert_eq!(v.renew(NodeId(0), 10), Ok(10));
        assert!(v.expired(10).is_empty(), "live exactly at expiry");
        assert_eq!(v.expired(11), vec![NodeId(0)]);
    }

    #[test]
    fn saturating_lease_arithmetic() {
        let mut v = MembershipView::new(1, u64::MAX, 5);
        assert_eq!(v.lease_expiry(NodeId(0)), Some(u64::MAX));
        assert_eq!(v.renew(NodeId(0), u64::MAX), Ok(u64::MAX));
    }
}
