//! Error types shared across the MINOS crates.

use crate::{Key, NodeId, Ts};
use std::fmt;

/// Convenience alias for results carrying [`MinosError`].
pub type Result<T> = std::result::Result<T, MinosError>;

/// Errors surfaced by the MINOS protocol engines and runtimes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MinosError {
    /// A message referenced a transaction the node has no record of and
    /// that cannot be a legitimately discarded late message.
    UnknownTransaction {
        /// Record key carried by the message.
        key: Key,
        /// Write timestamp carried by the message.
        ts: Ts,
    },
    /// A node id was outside the cluster membership.
    UnknownNode(NodeId),
    /// A request was rejected because the node (or its SmartNIC) ran out of
    /// resources — the paper notes a SmartNIC "can reject a request from
    /// its local host or from the network if it runs out of resources".
    ResourcesExhausted {
        /// Human-readable description of the exhausted resource.
        what: &'static str,
    },
    /// The target node is marked failed and cannot serve requests.
    NodeFailed(NodeId),
    /// A scope operation referenced an unknown scope.
    UnknownScope(u32),
    /// The cluster runtime shut down before the operation completed.
    Shutdown,
    /// A membership transition or cutover was rejected (rejoin of a
    /// serving node, second crash mid-catch-up, stale placement epoch…).
    Membership(String),
}

impl fmt::Display for MinosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinosError::UnknownTransaction { key, ts } => {
                write!(f, "message for unknown transaction ({key}, {ts})")
            }
            MinosError::UnknownNode(n) => write!(f, "unknown node {n}"),
            MinosError::ResourcesExhausted { what } => {
                write!(f, "resources exhausted: {what}")
            }
            MinosError::NodeFailed(n) => write!(f, "node {n} has failed"),
            MinosError::UnknownScope(sc) => write!(f, "unknown scope sc{sc}"),
            MinosError::Shutdown => write!(f, "cluster is shutting down"),
            MinosError::Membership(why) => write!(f, "membership violation: {why}"),
        }
    }
}

impl std::error::Error for MinosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = MinosError::NodeFailed(NodeId(3));
        let s = e.to_string();
        assert!(s.starts_with("node"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MinosError>();
    }
}
