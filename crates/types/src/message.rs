//! Protocol messages exchanged between Coordinator and Followers.

use crate::{Key, Ts, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a scope in the `<Lin, Scope>` model.
///
/// Scopes are per-coordinator: the pair `(coordinator NodeId, ScopeId)` is
/// globally unique, so messages carry only the `ScopeId` and the sender.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ScopeId(pub u32);

impl fmt::Display for ScopeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sc{}", self.0)
    }
}

/// Every message type of the MINOS protocols — the legal-message set that
/// Table I's type check 4(a) enumerates.
///
/// Messages in the `<Lin, Scope>` model carry `scope: Some(sc)` and
/// correspond to the paper's `[INV]sc`, `[ACK_C]sc`, … notation; in all
/// other models `scope` is `None`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Message {
    /// Invalidation: carries the new data; invalidates the previous version
    /// at the follower.
    Inv {
        /// Record being written.
        key: Key,
        /// The write's `TS_WR`.
        ts: Ts,
        /// New record payload.
        value: Value,
        /// Scope tag (`[INV]sc`) under `<Lin, Scope>`.
        scope: Option<ScopeId>,
    },
    /// Combined consistency+persistency acknowledgment (Synchronous model).
    Ack {
        /// Record being written.
        key: Key,
        /// The write's `TS_WR`.
        ts: Ts,
    },
    /// Consistency acknowledgment (split-ack models).
    AckC {
        /// Record being written.
        key: Key,
        /// The write's `TS_WR`.
        ts: Ts,
        /// Scope tag (`[ACK_C]sc`) under `<Lin, Scope>`.
        scope: Option<ScopeId>,
    },
    /// Persistency acknowledgment (Strict and Read-Enforced).
    AckP {
        /// Record being written.
        key: Key,
        /// The write's `TS_WR`.
        ts: Ts,
    },
    /// Combined validation, marking transaction completion (Synchronous and
    /// Read-Enforced use a single VAL type).
    Val {
        /// Record being written.
        key: Key,
        /// The write's `TS_WR`.
        ts: Ts,
    },
    /// Consistency validation (Strict, Eventual, Scope).
    ValC {
        /// Record being written.
        key: Key,
        /// The write's `TS_WR`.
        ts: Ts,
        /// Scope tag (`[VAL_C]sc`) under `<Lin, Scope>`.
        scope: Option<ScopeId>,
    },
    /// Persistency validation (Strict).
    ValP {
        /// Record being written.
        key: Key,
        /// The write's `TS_WR`.
        ts: Ts,
    },
    /// `[PERSIST]sc`: flush every write in scope `scope` (Scope model).
    Persist {
        /// The scope to flush.
        scope: ScopeId,
    },
    /// `[ACK_P]sc`: the follower has persisted all writes of the scope.
    PersistAckP {
        /// The scope that was flushed.
        scope: ScopeId,
    },
    /// `[VAL_P]sc`: terminates the `[PERSIST]sc` transaction.
    PersistValP {
        /// The scope that was flushed.
        scope: ScopeId,
    },
    /// Partial-replication extension: a node that holds no replica of
    /// `key` forwards the read to one that does.
    ReadReq {
        /// Record to read.
        key: Key,
        /// Forwarder-local token correlating the response.
        token: u64,
    },
    /// Partial-replication extension: the replica's reply to a
    /// [`Message::ReadReq`], served under the same RDLock discipline as a
    /// local read.
    ReadResp {
        /// Record read.
        key: Key,
        /// Token from the request.
        token: u64,
        /// Observed value.
        value: Value,
        /// Observed version.
        ts: Ts,
    },
}

/// Discriminant of [`Message`], used for statistics and type checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MessageKind {
    Inv,
    Ack,
    AckC,
    AckP,
    Val,
    ValC,
    ValP,
    Persist,
    PersistAckP,
    PersistValP,
    ReadReq,
    ReadResp,
}

impl Message {
    /// The message's kind.
    #[must_use]
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Inv { .. } => MessageKind::Inv,
            Message::Ack { .. } => MessageKind::Ack,
            Message::AckC { .. } => MessageKind::AckC,
            Message::AckP { .. } => MessageKind::AckP,
            Message::Val { .. } => MessageKind::Val,
            Message::ValC { .. } => MessageKind::ValC,
            Message::ValP { .. } => MessageKind::ValP,
            Message::Persist { .. } => MessageKind::Persist,
            Message::PersistAckP { .. } => MessageKind::PersistAckP,
            Message::PersistValP { .. } => MessageKind::PersistValP,
            Message::ReadReq { .. } => MessageKind::ReadReq,
            Message::ReadResp { .. } => MessageKind::ReadResp,
        }
    }

    /// Approximate wire size in bytes, used by the timing models.
    ///
    /// Control messages are modeled as a 32-byte header; `INV` additionally
    /// carries the record payload.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        const HEADER: u64 = 32;
        match self {
            Message::Inv { value, .. } | Message::ReadResp { value, .. } => {
                HEADER + value.len() as u64
            }
            _ => HEADER,
        }
    }

    /// The key this message concerns, if it is a per-record message.
    #[must_use]
    pub fn key(&self) -> Option<Key> {
        match self {
            Message::Inv { key, .. }
            | Message::Ack { key, .. }
            | Message::AckC { key, .. }
            | Message::AckP { key, .. }
            | Message::Val { key, .. }
            | Message::ValC { key, .. }
            | Message::ValP { key, .. }
            | Message::ReadReq { key, .. }
            | Message::ReadResp { key, .. } => Some(*key),
            _ => None,
        }
    }

    /// The write timestamp this message carries, if any.
    #[must_use]
    pub fn ts(&self) -> Option<Ts> {
        match self {
            Message::Inv { ts, .. }
            | Message::Ack { ts, .. }
            | Message::AckC { ts, .. }
            | Message::AckP { ts, .. }
            | Message::Val { ts, .. }
            | Message::ValC { ts, .. }
            | Message::ValP { ts, .. } => Some(*ts),
            _ => None,
        }
    }

    /// Whether this is an acknowledgment flowing Follower → Coordinator.
    #[must_use]
    pub fn is_ack(&self) -> bool {
        matches!(
            self.kind(),
            MessageKind::Ack | MessageKind::AckC | MessageKind::AckP | MessageKind::PersistAckP
        )
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Inv { key, ts, scope, .. } => match scope {
                Some(sc) => write!(f, "[INV]{sc}({key},{ts})"),
                None => write!(f, "INV({key},{ts})"),
            },
            Message::Ack { key, ts } => write!(f, "ACK({key},{ts})"),
            Message::AckC { key, ts, scope } => match scope {
                Some(sc) => write!(f, "[ACK_C]{sc}({key},{ts})"),
                None => write!(f, "ACK_C({key},{ts})"),
            },
            Message::AckP { key, ts } => write!(f, "ACK_P({key},{ts})"),
            Message::Val { key, ts } => write!(f, "VAL({key},{ts})"),
            Message::ValC { key, ts, scope } => match scope {
                Some(sc) => write!(f, "[VAL_C]{sc}({key},{ts})"),
                None => write!(f, "VAL_C({key},{ts})"),
            },
            Message::ValP { key, ts } => write!(f, "VAL_P({key},{ts})"),
            Message::Persist { scope } => write!(f, "[PERSIST]{scope}"),
            Message::PersistAckP { scope } => write!(f, "[ACK_P]{scope}"),
            Message::PersistValP { scope } => write!(f, "[VAL_P]{scope}"),
            Message::ReadReq { key, token } => write!(f, "READ_REQ({key},#{token})"),
            Message::ReadResp { key, token, ts, .. } => {
                write!(f, "READ_RESP({key},#{token},{ts})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use bytes::Bytes;

    fn inv(len: usize) -> Message {
        Message::Inv {
            key: Key(1),
            ts: Ts::new(NodeId(0), 1),
            value: Bytes::from(vec![0u8; len]),
            scope: None,
        }
    }

    #[test]
    fn inv_wire_size_includes_payload() {
        assert_eq!(inv(1024).wire_bytes(), 32 + 1024);
        assert_eq!(
            Message::Ack {
                key: Key(1),
                ts: Ts::zero()
            }
            .wire_bytes(),
            32
        );
    }

    #[test]
    fn kind_roundtrip() {
        assert_eq!(inv(0).kind(), MessageKind::Inv);
        assert_eq!(
            Message::Persist { scope: ScopeId(3) }.kind(),
            MessageKind::Persist
        );
    }

    #[test]
    fn ack_classification() {
        assert!(Message::Ack {
            key: Key(0),
            ts: Ts::zero()
        }
        .is_ack());
        assert!(Message::PersistAckP { scope: ScopeId(0) }.is_ack());
        assert!(!inv(0).is_ack());
        assert!(!Message::Val {
            key: Key(0),
            ts: Ts::zero()
        }
        .is_ack());
    }

    #[test]
    fn scope_messages_have_no_key() {
        assert_eq!(Message::Persist { scope: ScopeId(1) }.key(), None);
        assert_eq!(inv(0).key(), Some(Key(1)));
    }

    #[test]
    fn display_uses_paper_notation() {
        let m = Message::Inv {
            key: Key(2),
            ts: Ts::new(NodeId(1), 4),
            value: Bytes::new(),
            scope: Some(ScopeId(7)),
        };
        assert_eq!(m.to_string(), "[INV]sc7(k2,<n1,v4>)");
        assert_eq!(
            Message::Persist { scope: ScopeId(7) }.to_string(),
            "[PERSIST]sc7"
        );
    }
}
