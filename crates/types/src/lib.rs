//! Common types for the MINOS Distributed Data Persistency (DDP) protocol
//! suite.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Ts`] — logical timestamps (`<node_id, version>` tuples, ordered by
//!   version then node id), exactly as in Figure 1(b) of the paper;
//! * [`RecordMeta`] — the per-record metadata of Figure 1(a):
//!   `RDLock_Owner`, `WRLock`, `volatileTS`, `glb_volatileTS`,
//!   `glb_durableTS`;
//! * [`Message`] — every protocol message of Table I's type-check set
//!   (`INV`, `ACK`, `ACK_C`, `ACK_P`, `VAL`, `VAL_C`, `VAL_P`, the
//!   scope-tagged variants, and `[PERSIST]sc`);
//! * [`PersistencyModel`] / [`DdpModel`] — the five persistency models
//!   combined with Linearizable consistency;
//! * [`ClusterConfig`] / [`SimConfig`] — the Table II and Table III
//!   parameter sets.
//!
//! # Example
//!
//! ```
//! use minos_types::{Ts, NodeId};
//!
//! let older = Ts::new(NodeId(3), 7);
//! let newer = Ts::new(NodeId(0), 8);
//! assert!(newer > older, "version dominates node id");
//!
//! let tie_a = Ts::new(NodeId(1), 7);
//! let tie_b = Ts::new(NodeId(2), 7);
//! assert!(tie_b > tie_a, "ties break on node id");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chaos;
mod config;
mod error;
mod membership;
mod message;
mod model;
mod record;
mod shard;
mod ts;
pub mod wire;

pub use chaos::{ChaosSpec, FaultKind, FaultSpec, MsgChaos, MsgInjection};
pub use config::{ClusterConfig, SimConfig};
pub use error::{MinosError, Result};
pub use membership::{MembershipError, MembershipView, NodeState, ViewMsg};
pub use message::{Message, MessageKind, ScopeId};
pub use model::{ConsistencyModel, DdpModel, PersistencyModel};
pub use record::{Record, RecordMeta};
pub use shard::{GroupId, ShardId, ShardMap};
pub use ts::{Key, NodeId, Ts, Value, TS_UNLOCKED};
