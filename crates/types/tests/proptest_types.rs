//! Property-based tests of the timestamp and metadata primitives.

use minos_types::{NodeId, RecordMeta, Ts};
use proptest::prelude::*;

fn ts_strategy() -> impl Strategy<Value = Ts> {
    (0u16..16, 0u32..1_000_000).prop_map(|(n, v)| Ts::new(NodeId(n), v))
}

proptest! {
    #[test]
    fn ts_ordering_is_total_and_antisymmetric(a in ts_strategy(), b in ts_strategy()) {
        prop_assert_eq!(a < b, b > a);
        prop_assert_eq!(a == b, a >= b && b >= a);
    }

    #[test]
    fn ts_ordering_is_transitive(
        a in ts_strategy(),
        b in ts_strategy(),
        c in ts_strategy(),
    ) {
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    #[test]
    fn version_dominates_node(a in ts_strategy(), b in ts_strategy()) {
        if a.version != b.version {
            prop_assert_eq!(a < b, a.version < b.version);
        } else {
            prop_assert_eq!(a < b, a.node < b.node);
        }
    }

    #[test]
    fn next_version_is_strictly_newer(t in ts_strategy(), n in 0u16..16) {
        let nxt = t.next_version(NodeId(n));
        prop_assert!(nxt > t);
        prop_assert_eq!(nxt.node, NodeId(n));
    }

    #[test]
    fn snatch_keeps_youngest_owner(stamps in proptest::collection::vec(ts_strategy(), 1..30)) {
        let mut m = RecordMeta::new();
        for &ts in &stamps {
            m.snatch_rd_lock(ts);
        }
        // The final owner must be the maximum of all distinct contenders.
        let max = stamps.iter().copied().max().unwrap();
        prop_assert_eq!(m.rd_lock_owner, Some(max));
    }

    #[test]
    fn raises_are_monotone(stamps in proptest::collection::vec(ts_strategy(), 1..30)) {
        let mut m = RecordMeta::new();
        let mut prev = Ts::zero();
        for &ts in &stamps {
            m.raise_volatile(ts);
            m.raise_glb_volatile(ts);
            m.raise_glb_durable(ts);
            prop_assert!(m.volatile_ts >= prev);
            prev = m.volatile_ts;
        }
        let max = stamps.iter().copied().max().unwrap().max(Ts::zero());
        prop_assert_eq!(m.volatile_ts, max);
        prop_assert_eq!(m.glb_volatile_ts, max);
        prop_assert_eq!(m.glb_durable_ts, max);
    }

    #[test]
    fn obsolete_iff_strictly_older(a in ts_strategy(), b in ts_strategy()) {
        let mut m = RecordMeta::new();
        m.raise_volatile(a);
        prop_assert_eq!(m.is_obsolete(b), b < a);
    }

    #[test]
    fn unlock_requires_exact_owner(a in ts_strategy(), b in ts_strategy()) {
        let mut m = RecordMeta::new();
        m.snatch_rd_lock(a);
        let released = m.rd_unlock_if_owner(b);
        prop_assert_eq!(released, a == b);
        prop_assert_eq!(m.readable(), a == b);
    }
}
