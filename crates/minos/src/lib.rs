//! # MINOS — Distributed Consistency & Persistency Protocols with SmartNIC Offloading
//!
//! A full reproduction of *"MINOS: Distributed Consistency and Persistency
//! Protocol Implementation & Offloading to SmartNICs"* (HPCA 2024) as a
//! Rust workspace. This facade crate re-exports every subsystem:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `minos-core` | The MINOS-B and MINOS-O protocol engines (the paper's contribution) |
//! | [`types`] | `minos-types` | Timestamps, record metadata, messages, models, configs |
//! | [`sim`] | `minos-sim` | Discrete-event simulation kernel |
//! | [`net`] | `minos-net` | The simulated distributed machine (Table III) + workload driver |
//! | [`nvm`] | `minos-nvm` | Emulated NVM, durable log, durable database |
//! | [`kv`] | `minos-kv` | MINOS-KV replicated store + recovery |
//! | [`cluster`] | `minos-cluster` | Threaded multi-node runtime (Table II machine) |
//! | [`check`] | `minos-check` | Linearizability + persistency conformance checking, seeded chaos torture |
//! | [`workload`] | `minos-workload` | YCSB-style + DeathStar workload generation |
//! | [`mc`] | `minos-mc` | Explicit-state model checker (Table I invariants) |
//! | [`obs`] | `minos-core::obs` | Structured tracing, latency histograms, trace replay |
//!
//! # Quickstart
//!
//! ```
//! use minos::kv::MinosKv;
//! use minos::types::{DdpModel, NodeId, PersistencyModel};
//!
//! // A 5-node replicated store under <Lin, Synch>.
//! let mut kv = MinosKv::new(5, DdpModel::lin(PersistencyModel::Synchronous));
//! kv.put(NodeId(0), "answer", "42")?;
//! assert_eq!(kv.get(NodeId(4), "answer")?.unwrap(), "42");
//! # Ok::<(), minos::types::MinosError>(())
//! ```
//!
//! The runnable binaries under `examples/` walk through the store, the
//! simulated machine, the DeathStar end-to-end scenario, failure
//! recovery, and protocol verification; `minos-bench` regenerates every
//! figure and table of the paper's evaluation (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use minos_check as check;
pub use minos_cluster as cluster;
pub use minos_core as core;
pub use minos_core::obs;
pub use minos_kv as kv;
pub use minos_mc as mc;
pub use minos_net as net;
pub use minos_nvm as nvm;
pub use minos_sim as sim;
pub use minos_types as types;
pub use minos_workload as workload;
