//! The simulated MINOS-O machine: SmartNIC-offloaded protocol execution.

use crate::arch::Arch;
use crate::bsim::{ViewChange, SIM_LEASE_NS};
use crate::driver::{CompletionKind, CompletionRec};
use crate::timing::{self, DISPATCH_NS};
use minos_core::obs::{GaugeKind, GaugeSet, SharedSink, TraceClock, Tracer, GAUGE_NODE_ALL};
use minos_core::runtime::{self, ODispatchStats, ODispatcher, OSink, ShardRouter, Transport};
use minos_core::{OAction, OEvent, ONodeEngine, PcieMsg, ReqId, Side};
use minos_sim::{BoundedFifo, CorePool, DepthTracker, EventQueue, Resource, Time};
use minos_types::wire::TraceCtx;
use minos_types::{
    DdpModel, Key, MembershipView, Message, MessageKind, NodeId, ScopeId, ShardMap, SimConfig, Ts,
    Value,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct ONodeRes {
    host_cores: CorePool,
    snic_cores: CorePool,
    /// Host→SNIC PCIe bandwidth.
    pcie_down: Resource,
    /// SNIC→host PCIe bandwidth.
    pcie_up: Resource,
    /// SNIC network send engine.
    nic_tx: Resource,
    vfifo: BoundedFifo,
    dfifo: BoundedFifo,
    /// Telemetry companion: host→SNIC PCIe submission-queue depth.
    pcie_depth: DepthTracker,
    /// Telemetry companion: SNIC wire-TX queue depth.
    nic_depth: DepthTracker,
}

/// The MINOS-O discrete-event simulation.
///
/// Follower processing and the Coordinator's fan-out/collection run on
/// SmartNIC cores; only batched descriptors cross PCIe; local-writes go
/// through the bounded vFIFO/dFIFO; metadata accesses that migrate the
/// coherent line between host and SNIC pay the snoop latency.
///
/// With `Arch { batching: false, .. }` or `broadcast: false` this also
/// models the intermediate Figure 12 points (Combined, Combined+batch,
/// Combined+bcast).
#[derive(Debug)]
pub struct OSim {
    cfg: SimConfig,
    arch: Arch,
    engines: Vec<ONodeEngine>,
    dispatchers: Vec<ODispatcher>,
    /// Scheduled deliveries with the causing dispatch's trace context
    /// (see [`crate::bsim::BSim`]'s queue).
    queue: EventQueue<(NodeId, OEvent, Option<TraceCtx>)>,
    nodes: Vec<ONodeRes>,
    completions: Vec<CompletionRec>,
    /// Write submission times, for latency bookkeeping by the driver.
    next_req: u64,
    /// Virtual-clock source shared with attached tracers: holds the
    /// simulated time of the event being dispatched.
    vclock: Option<Arc<AtomicU64>>,
    /// Resource telemetry, sampled every `cfg.telemetry_tick_ns` of
    /// virtual time (PCIe bytes and batch fill accumulate event-driven).
    gauges: GaugeSet,
    /// Next virtual-time telemetry sample point.
    next_sample: Time,
    /// Completions already handed out through `drain_completions`.
    drained: u64,
    /// Events processed by [`OSim::step`] so far (see
    /// [`BSim::events_processed`](crate::bsim::BSim::events_processed)).
    events: u64,
    /// Key → shard-group routing and multi-op barriers; identity when the
    /// simulation is unsharded. MINOS-O engines have no redirect path, so
    /// on a sharded simulation this facade routing is what keeps every
    /// submit on a replica.
    router: ShardRouter,
    /// Requests routed off their origin node: req → origin.
    routed: HashMap<ReqId, NodeId>,
    /// Barrier parents: parent req → (origin, completion kind).
    parents: HashMap<ReqId, (NodeId, CompletionKind)>,
    /// Latest child completion seen per parent.
    parent_hwm: HashMap<ReqId, Time>,
    /// Submitted-minus-completed keyed ops per shard (sharded only).
    inflight_by_shard: BTreeMap<u32, u64>,
    /// Scheduled membership actions (see [`crate::bsim::BSim`]). The
    /// offloaded engine has no failure detector — its quorums always
    /// span the full replica group — so O-side view changes are
    /// *quiesced*: they fire only between client batches, and the
    /// harness panics if an operation is still in flight.
    ctrl: Vec<(Time, ViewChange)>,
    /// Epoch/lease membership view; simulated time feeds the lease
    /// clock.
    view: MembershipView,
}

impl OSim {
    /// Builds the simulation for `cfg.nodes` nodes running `model`.
    #[must_use]
    pub fn new(cfg: SimConfig, arch: Arch, model: DdpModel) -> Self {
        assert!(arch.offload, "OSim models offloaded architectures");
        let n = cfg.nodes;
        OSim {
            engines: (0..n)
                .map(|i| ONodeEngine::new(NodeId(i as u16), n, model))
                .collect(),
            dispatchers: vec![ODispatcher::new(); n],
            nodes: (0..n)
                .map(|_| ONodeRes {
                    host_cores: CorePool::new(cfg.host_cores),
                    snic_cores: CorePool::new(cfg.snic_cores),
                    pcie_down: Resource::new(),
                    pcie_up: Resource::new(),
                    nic_tx: Resource::new(),
                    vfifo: BoundedFifo::new(cfg.vfifo_entries),
                    dfifo: BoundedFifo::new(cfg.dfifo_entries),
                    pcie_depth: DepthTracker::new(),
                    nic_depth: DepthTracker::new(),
                })
                .collect(),
            queue: EventQueue::new(),
            completions: Vec::new(),
            next_req: 1,
            vclock: None,
            gauges: GaugeSet::new(),
            next_sample: 0,
            drained: 0,
            events: 0,
            router: ShardRouter::new(None),
            routed: HashMap::new(),
            parents: HashMap::new(),
            parent_hwm: HashMap::new(),
            inflight_by_shard: BTreeMap::new(),
            ctrl: Vec::new(),
            view: MembershipView::new(n, SIM_LEASE_NS, 0),
            cfg,
            arch,
        }
    }

    /// Builds a sharded simulation over `map`'s nodes (see
    /// [`BSim::with_placement`](crate::bsim::BSim::with_placement)).
    ///
    /// # Panics
    ///
    /// Panics if `map` does not span exactly `cfg.nodes` nodes.
    #[must_use]
    pub fn with_placement(cfg: SimConfig, arch: Arch, model: DdpModel, map: ShardMap) -> Self {
        assert_eq!(map.n_nodes(), cfg.nodes, "placement/config node mismatch");
        let mut sim = OSim::new(cfg, arch, model);
        for e in &mut sim.engines {
            e.set_placement(Some(map.clone()));
        }
        sim.router = ShardRouter::new(Some(map));
        sim
    }

    /// The placement map, if this simulation is sharded.
    #[must_use]
    pub fn placement(&self) -> Option<&ShardMap> {
        self.router.map()
    }

    /// Attaches observability sinks to every node's dispatcher. Records
    /// are stamped with simulated time (a virtual clock that tracks the
    /// event queue), so traces replay on the same axis as the DES.
    pub fn attach_tracer(&mut self, sinks: Vec<SharedSink>) {
        let source = Arc::new(AtomicU64::new(0));
        for (i, d) in self.dispatchers.iter_mut().enumerate() {
            d.set_tracer(Some(Tracer::new(
                NodeId(i as u16),
                TraceClock::virtual_time(Arc::clone(&source)),
                sinks.clone(),
            )));
        }
        self.vclock = Some(source);
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Pre-loads a record on every node that replicates it.
    pub fn load_all(&mut self, key: Key, value: Value) {
        for e in &mut self.engines {
            if e.is_replica(key) {
                e.load_record(key, value.clone());
            }
        }
    }

    fn note_submitted(&mut self, key: Key) {
        if let Some(map) = self.router.map() {
            let shard = map.shard_of(key).0;
            *self.inflight_by_shard.entry(shard).or_insert(0) += 1;
        }
    }

    /// Schedules `ev` at `coord`, charging the one-way routing hop when
    /// the op was submitted at a different node.
    fn route_schedule(&mut self, at: Time, origin: NodeId, coord: NodeId, req: ReqId, ev: OEvent) {
        let at = if coord == origin {
            at
        } else {
            self.routed.insert(req, origin);
            at + timing::route_hop_ns(&self.cfg)
        };
        self.queue.schedule(at, (coord, ev, None));
    }

    /// Submits a client write, routed to a replica of its key's shard.
    pub fn submit_write(
        &mut self,
        at: Time,
        node: NodeId,
        key: Key,
        value: Value,
        scope: Option<ScopeId>,
    ) -> ReqId {
        let req = self.fresh_req();
        let coord = self.router.route_write(node, key, scope);
        self.note_submitted(key);
        self.route_schedule(
            at,
            node,
            coord,
            req,
            OEvent::ClientWrite {
                key,
                value,
                scope,
                req,
            },
        );
        req
    }

    /// Submits a client read, routed to a serving replica.
    pub fn submit_read(&mut self, at: Time, node: NodeId, key: Key) -> ReqId {
        let req = self.fresh_req();
        let serving = self.router.serving(node, key);
        self.note_submitted(key);
        self.route_schedule(at, node, serving, req, OEvent::ClientRead { key, req });
        req
    }

    /// Submits a multi-key write batch (see
    /// [`BSim::submit_write_multi`](crate::bsim::BSim::submit_write_multi)).
    ///
    /// # Panics
    ///
    /// Panics if `writes` is empty.
    pub fn submit_write_multi(
        &mut self,
        at: Time,
        node: NodeId,
        writes: Vec<(Key, Value)>,
        scope: Option<ScopeId>,
    ) -> ReqId {
        assert!(!writes.is_empty(), "empty multi-key write batch");
        let req = self.fresh_req();
        let children: Vec<ReqId> = writes.iter().map(|_| self.fresh_req()).collect();
        self.router.begin_barrier(req, &children);
        self.parents.insert(req, (node, CompletionKind::MultiWrite));
        for ((key, value), child) in writes.into_iter().zip(children) {
            let coord = self.router.route_write(node, key, scope);
            self.note_submitted(key);
            self.route_schedule(
                at,
                node,
                coord,
                child,
                OEvent::ClientWrite {
                    key,
                    value,
                    scope,
                    req: child,
                },
            );
        }
        req
    }

    /// Submits a `[PERSIST]sc`, fanned out to every recorded coordinator
    /// on a sharded simulation.
    pub fn submit_persist_scope(&mut self, at: Time, node: NodeId, scope: ScopeId) -> ReqId {
        let req = self.fresh_req();
        if self.router.map().is_some() {
            let coords = self.router.scope_coordinators(node, scope);
            let children: Vec<ReqId> = coords.iter().map(|_| self.fresh_req()).collect();
            self.router.begin_barrier(req, &children);
            self.parents
                .insert(req, (node, CompletionKind::PersistScope));
            for (coord, child) in coords.into_iter().zip(children) {
                self.route_schedule(
                    at,
                    node,
                    coord,
                    child,
                    OEvent::ClientPersistScope { scope, req: child },
                );
            }
        } else {
            self.queue
                .schedule(at, (node, OEvent::ClientPersistScope { scope, req }, None));
        }
        req
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    /// Drains recorded completions; routed requests pay the return hop
    /// and barrier children fold into their parent (see
    /// [`BSim::drain_completions`](crate::bsim::BSim::drain_completions)).
    pub fn drain_completions(&mut self) -> Vec<CompletionRec> {
        let raw = std::mem::take(&mut self.completions);
        let mut out = Vec::with_capacity(raw.len());
        for mut rec in raw {
            if self.routed.remove(&rec.req).is_some() {
                rec.at += timing::route_hop_ns(&self.cfg);
            }
            if let Some(key) = rec.key {
                if let Some(map) = self.router.map() {
                    let shard = map.shard_of(key).0;
                    if let Some(n) = self.inflight_by_shard.get_mut(&shard) {
                        *n = n.saturating_sub(1);
                    }
                }
            }
            match self.router.parent_of(rec.req) {
                None => out.push(rec),
                Some(parent) => {
                    let hwm = self.parent_hwm.entry(parent).or_insert(0);
                    *hwm = (*hwm).max(rec.at);
                    if self.router.complete_child(rec.req).is_some() {
                        let (origin, kind) = self.parents.remove(&parent).expect("parent recorded");
                        let at = self.parent_hwm.remove(&parent).unwrap_or(rec.at);
                        out.push(CompletionRec {
                            req: parent,
                            node: origin,
                            at,
                            kind,
                            key: None,
                            ts: Ts::zero(),
                            obsolete: false,
                            comm_ns: None,
                        });
                    }
                }
            }
        }
        self.drained += out.len() as u64;
        out
    }

    /// The resource-telemetry gauges accumulated so far.
    #[must_use]
    pub fn gauges(&self) -> &GaugeSet {
        &self.gauges
    }

    /// Samples the level gauges at virtual time `t` when a telemetry
    /// tick boundary has been crossed (one sample per crossing).
    fn sample_gauges(&mut self, t: Time) {
        let tick = self.cfg.telemetry_tick_ns;
        if tick == 0 || t < self.next_sample {
            return;
        }
        self.next_sample = (t / tick + 1) * tick;
        self.gauges.observe(
            GaugeKind::EventQueueDepth,
            GAUGE_NODE_ALL,
            self.queue.len() as u64,
        );
        for (i, res) in self.nodes.iter_mut().enumerate() {
            let node = i as u32;
            self.gauges.observe(
                GaugeKind::VfifoOccupancy,
                node,
                res.vfifo.occupancy(t) as u64,
            );
            self.gauges.observe(
                GaugeKind::DfifoOccupancy,
                node,
                res.dfifo.occupancy(t) as u64,
            );
            self.gauges.observe(
                GaugeKind::HostSendQueue,
                node,
                res.pcie_depth.depth(t) as u64,
            );
            self.gauges
                .observe(GaugeKind::NicSendQueue, node, res.nic_depth.depth(t) as u64);
        }
        match self.router.map().cloned() {
            Some(map) => {
                for (i, e) in self.engines.iter().enumerate() {
                    let by_shard = e.locked_records_by_shard(&map);
                    for sh in map.shards_on(NodeId(i as u16)) {
                        let n = by_shard.get(&sh.0).copied().unwrap_or(0);
                        self.gauges.observe_shard(
                            GaugeKind::LockTableSize,
                            i as u32,
                            sh.0,
                            n as u64,
                        );
                    }
                }
                for (&shard, &n) in &self.inflight_by_shard {
                    self.gauges
                        .observe_shard(GaugeKind::InflightTxs, GAUGE_NODE_ALL, shard, n);
                }
            }
            None => {
                for (i, e) in self.engines.iter().enumerate() {
                    self.gauges.observe(
                        GaugeKind::LockTableSize,
                        i as u32,
                        e.locked_records() as u64,
                    );
                }
                let issued = self.next_req - 1;
                let done = self.drained + self.completions.len() as u64;
                self.gauges.observe(
                    GaugeKind::InflightTxs,
                    GAUGE_NODE_ALL,
                    issued.saturating_sub(done),
                );
            }
        }
    }

    /// Access to a node's engine.
    #[must_use]
    pub fn engine(&self, node: NodeId) -> &ONodeEngine {
        &self.engines[node.0 as usize]
    }

    /// Which side executes a given event's handler.
    fn side_of(ev: &OEvent) -> Side {
        match ev {
            OEvent::ClientWrite { .. }
            | OEvent::HostStart { .. }
            | OEvent::ClientRead { .. }
            | OEvent::ClientPersistScope { .. }
            | OEvent::PcieFromSnic(_) => Side::Host,
            OEvent::PcieFromHost(_)
            | OEvent::NetMessage { .. }
            | OEvent::VfifoDrained { .. }
            | OEvent::DfifoDrained { .. } => Side::Snic,
        }
    }

    /// Per-node dispatch statistics (protocol actions interpreted for
    /// `node` so far).
    #[must_use]
    pub fn dispatch_stats(&self, node: NodeId) -> &ODispatchStats {
        self.dispatchers[node.0 as usize].stats()
    }

    /// Schedules a *quiesced* crash of `node` at `at`: every engine must
    /// be idle when the action fires (the offloaded protocol has no
    /// failure handling, so a mid-flight crash would stall the full-group
    /// quorum forever). Volatile state is lost and the epoch advances.
    pub fn schedule_crash(&mut self, at: Time, node: NodeId) {
        self.ctrl.push((at, ViewChange::Crash(node)));
    }

    /// Schedules the quiesced rejoin of a crashed `node` at `at` with
    /// `donor` as the catch-up source; the node re-enters the serving
    /// set after [`timing::catchup_ns`].
    pub fn schedule_rejoin(&mut self, at: Time, node: NodeId, donor: NodeId) {
        self.ctrl
            .push((at, ViewChange::BeginRejoin { node, donor }));
    }

    /// The epoch/lease membership view in force.
    #[must_use]
    pub fn membership(&self) -> &MembershipView {
        &self.view
    }

    /// The current view epoch.
    #[must_use]
    pub fn view_epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// Pops the earliest scheduled view change if due before (or at) the
    /// next protocol event.
    fn pop_ctrl_due(&mut self) -> Option<(Time, ViewChange)> {
        let idx = self
            .ctrl
            .iter()
            .enumerate()
            .min_by_key(|(_, (t, _))| *t)
            .map(|(i, _)| i)?;
        let t = self.ctrl[idx].0;
        if self.queue.peek_time().is_none_or(|evt| t <= evt) {
            Some(self.ctrl.remove(idx))
        } else {
            None
        }
    }

    /// Applies one due view change at `t` (quiesced — see
    /// [`OSim::schedule_crash`]).
    fn apply_view_change(&mut self, t: Time, vc: ViewChange) {
        assert!(
            self.engines.iter().all(ONodeEngine::is_quiescent),
            "O-sim view changes must be quiesced"
        );
        if let Some(v) = &self.vclock {
            v.store(t, Ordering::Relaxed);
        }
        self.sample_gauges(t);
        match vc {
            ViewChange::Crash(node) => {
                let ni = node.0 as usize;
                let n = self.engines.len();
                let model = self.engines[ni].model();
                self.engines[ni] = ONodeEngine::new(node, n, model);
                self.engines[ni].set_placement(self.router.map().cloned());
                self.dispatchers[ni] = ODispatcher::new();
                let _ = self.view.mark_down(node);
            }
            ViewChange::BeginRejoin { node, donor } => {
                if !self.view.is_serving(donor) || self.view.begin_rejoin(node).is_err() {
                    return;
                }
                let ni = node.0 as usize;
                let records: Vec<(Key, Ts, Value)> = self.engines[donor.0 as usize]
                    .keys()
                    .into_iter()
                    .filter(|&k| self.engines[ni].is_replica(k))
                    .map(|k| {
                        let e = &self.engines[donor.0 as usize];
                        (
                            k,
                            e.record_meta(k).volatile_ts,
                            e.record_value(k).unwrap_or_default(),
                        )
                    })
                    .collect();
                let bytes: u64 = records.iter().map(|(_, _, v)| v.len() as u64).sum();
                let cost = timing::catchup_ns(&self.cfg, records.len() as u64, bytes);
                for (k, ts, v) in records {
                    self.engines[ni].install_recovered(k, ts, v);
                }
                self.ctrl.push((t + cost, ViewChange::Readmit(node)));
            }
            ViewChange::Readmit(node) => {
                self.view
                    .complete_rejoin(node, t)
                    .expect("readmit follows begin_rejoin");
            }
        }
    }

    /// Events processed by [`OSim::step`] so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Processes one simulated event. Returns false when idle.
    pub fn step(&mut self) -> bool {
        if let Some((t, vc)) = self.pop_ctrl_due() {
            self.events += 1;
            self.apply_view_change(t, vc);
            return true;
        }
        let Some((t, (node, ev, ctx))) = self.queue.pop() else {
            return false;
        };
        self.events += 1;
        // A node outside the serving set neither receives nor computes.
        if !self.view.is_serving(node) {
            return true;
        }
        let ni = node.0 as usize;
        if let Some(v) = &self.vclock {
            v.store(t, Ordering::Relaxed);
        }
        self.sample_gauges(t);
        let side = Self::side_of(&ev);

        let n_nodes = self.engines.len();
        let mut handler = OSimHandler {
            cfg: &self.cfg,
            arch: self.arch,
            node,
            n_nodes,
            placement: self.router.map(),
            side,
            t,
            end: t,
            vq_done: None,
            dq_done: None,
            ctx: None,
            res: &mut self.nodes[ni],
            queue: &mut self.queue,
            completions: &mut self.completions,
            gauges: &mut self.gauges,
        };
        self.dispatchers[ni].dispatch_ctx(&mut self.engines[ni], ev, ctx, &mut handler);
        true
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }
}

/// The DES dispatch handler for one event at one node. The dispatcher
/// streams actions in emission order, so the FIFO-enqueue sink calls are
/// seen *before* the sends they semantically precede — the handler
/// records their completion times and gates later sends on them (§V-C).
struct OSimHandler<'a> {
    cfg: &'a SimConfig,
    arch: Arch,
    node: NodeId,
    n_nodes: usize,
    /// Placement map (sharded runs): sizes per-key batch fan-outs.
    placement: Option<&'a ShardMap>,
    /// Which side's cores run this event's handler.
    side: Side,
    /// Event arrival time.
    t: Time,
    /// Core-release time, set by [`OSink::begin`].
    end: Time,
    /// vFIFO enqueue completion within this dispatch, if any.
    vq_done: Option<Time>,
    /// dFIFO enqueue completion within this dispatch, if any.
    dq_done: Option<Time>,
    /// The dispatching node's trace context, stamped onto every event
    /// this dispatch schedules.
    ctx: Option<TraceCtx>,
    res: &'a mut ONodeRes,
    queue: &'a mut EventQueue<(NodeId, OEvent, Option<TraceCtx>)>,
    completions: &'a mut Vec<CompletionRec>,
    gauges: &'a mut GaugeSet,
}

impl OSimHandler<'_> {
    /// How many followers a batched INV for `key` fans out to: the key's
    /// replica group minus the coordinator under a placement map, all
    /// peers otherwise.
    fn batch_fanout(&self, key: Key) -> u64 {
        match self.placement {
            Some(map) => (map.replicas_of_key(key).len().saturating_sub(1)).max(1) as u64,
            None => (self.n_nodes - 1).max(1) as u64,
        }
    }

    /// The earliest time a message emitted by this handler may be sent,
    /// given the FIFO writes that precede it semantically.
    fn send_gate(&self, msg: &Message) -> Time {
        match msg.kind() {
            // Consistency acks follow the vFIFO enqueue.
            MessageKind::AckC => self.vq_done.unwrap_or(self.end),
            // Combined/persistency acks follow the dFIFO enqueue (the
            // update must be durable).
            MessageKind::Ack | MessageKind::AckP | MessageKind::PersistAckP => {
                self.dq_done.or(self.vq_done).unwrap_or(self.end)
            }
            _ => self.end,
        }
    }

    fn deliver(&mut self, to: NodeId, depart: Time, msg: Message) {
        let arrival = depart + timing::link_time(self.cfg, &msg);
        self.queue.schedule(
            arrival,
            (
                to,
                OEvent::NetMessage {
                    from: self.node,
                    msg,
                },
                self.ctx,
            ),
        );
    }

    fn complete(
        &mut self,
        req: ReqId,
        kind: CompletionKind,
        key: Option<Key>,
        ts: Ts,
        obsolete: bool,
    ) {
        self.completions.push(CompletionRec {
            req,
            node: self.node,
            at: self.end,
            kind,
            key,
            ts,
            obsolete,
            comm_ns: None,
        });
    }
}

impl OSimHandler<'_> {
    /// Occupies the SNIC send engine, feeding the TX-queue-depth
    /// telemetry tracker.
    fn nic_tx(&mut self, from: Time, cost: Time) -> Time {
        let depart = self.res.nic_tx.acquire(from, cost);
        self.res.nic_depth.on_acquire(depart);
        depart
    }
}

impl Transport for OSimHandler<'_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        let start = self.send_gate(&msg);
        let depart = self.nic_tx(start, timing::send_cost(self.cfg, &msg));
        self.deliver(to, depart, msg);
    }

    fn set_ctx(&mut self, ctx: Option<TraceCtx>) {
        self.ctx = ctx;
    }

    /// SNIC-side fan-out: a single Send-Buffer deposit with the broadcast
    /// FSM, or serialized sends (plus the batch-unpack penalty when the
    /// descriptor was batched but cannot be broadcast — the Figure 12
    /// "Combined+batching is slower" effect).
    fn broadcast(&mut self, dests: &[NodeId], msg: Message) {
        let start = self.send_gate(&msg);
        let send = timing::send_cost(self.cfg, &msg);
        if self.arch.broadcast {
            let depart = self.nic_tx(start, send);
            for &d in dests {
                self.deliver(d, depart, msg.clone());
            }
        } else {
            let base = if self.arch.batching {
                start + self.cfg.batch_unpack_ns
            } else {
                start
            };
            for &d in dests {
                let depart = self.nic_tx(base, send + self.cfg.inter_msg_gap_ns);
                self.deliver(d, depart, msg.clone());
            }
        }
    }
}

impl OSink for OSimHandler<'_> {
    fn begin(&mut self, actions: &[OAction]) {
        // Handler compute cost: dispatch + meta hints + coherence snoops.
        let cost: Time = DISPATCH_NS
            + runtime::o_meta_ops(actions)
                .map(|(side, op)| timing::meta_cost(self.cfg, side, *op))
                .sum::<Time>()
            + runtime::coherence_transfer_count(actions) as Time * self.cfg.coherence_snoop_ns;
        self.end = match self.side {
            Side::Host => self.res.host_cores.acquire(self.t, cost),
            Side::Snic => self.res.snic_cores.acquire(self.t, cost),
        };
    }

    /// A PCIe descriptor between host and SNIC.
    ///
    /// Unlike the baseline's dumb NIC (doorbell per message, transfers
    /// one at a time), the SmartNIC's DMA engines stream descriptors
    /// back-to-back: per-descriptor occupancy is the bandwidth component
    /// and the bus latency pipelines across them. Without batching, the
    /// `BatchedInv` therefore costs one bandwidth slot per destination
    /// (the Combined-without-batching ablation point); with batching it
    /// is a single full transfer — whose *unpack* cost on the SNIC is
    /// what makes batching a loss until broadcast removes it (Figure 12).
    fn pcie(&mut self, from: Side, msg: PcieMsg) {
        let bytes = msg.wire_bytes();
        let transfers = match (&msg, self.arch.batching) {
            (PcieMsg::BatchedInv { key, .. }, false) => self.batch_fanout(*key),
            _ => 1,
        };
        if self.arch.batching {
            if let PcieMsg::BatchedInv { key, .. } = &msg {
                // One descriptor carried the whole fan-out: its fill is
                // the destination count.
                let fill = self.batch_fanout(*key);
                self.gauges
                    .observe(GaugeKind::BatchFill, u32::from(self.node.0), fill);
            }
        }
        self.gauges.add(
            GaugeKind::PcieBytes,
            u32::from(self.node.0),
            bytes.max(64) * transfers,
        );
        let res = match from {
            Side::Host => &mut self.res.pcie_down,
            Side::Snic => &mut self.res.pcie_up,
        };
        let bw = (bytes.max(64) * 1_000_000_000 / self.cfg.pcie_bw_bytes_per_s).max(1);
        let mut bw_done = self.end;
        for _ in 0..transfers {
            bw_done = res.acquire(self.end, bw);
        }
        if from == Side::Host {
            // Host-side submissions feed the host send-queue gauge.
            self.res.pcie_depth.on_acquire(bw_done);
        }
        let arrival = bw_done + self.cfg.pcie_latency_ns;
        let ev = match from {
            Side::Host => OEvent::PcieFromHost(msg),
            Side::Snic => OEvent::PcieFromSnic(msg),
        };
        self.queue.schedule(arrival, (self.node, ev, self.ctx));
    }

    fn vfifo_enqueue(&mut self, key: Key, ts: Ts, bytes: u64) {
        let write = self.cfg.vfifo_write_ns(bytes);
        // Drain = DMA into the host LLC across PCIe.
        let drain = self.cfg.pcie_transfer_ns(bytes) + self.cfg.llc_update_ns(bytes);
        self.gauges
            .add(GaugeKind::PcieBytes, u32::from(self.node.0), bytes.max(64));
        let outcome = self.res.vfifo.enqueue(self.end, write, drain);
        self.vq_done = Some(outcome.enqueued_at);
        self.queue.schedule(
            outcome.drained_at,
            (self.node, OEvent::VfifoDrained { key, ts }, self.ctx),
        );
    }

    fn dfifo_enqueue(&mut self, key: Key, ts: Ts, bytes: u64) {
        let write = self.cfg.dfifo_write_ns(bytes);
        // The dFIFO write itself made the update durable. An entry hands
        // off to the DMA output register as soon as it reaches the head
        // (slot held for the write only); the background DMA append to
        // the host NVM log shows up in the drained-event time.
        let outcome = self.res.dfifo.enqueue(self.end, write, 0);
        self.dq_done = Some(outcome.enqueued_at);
        self.gauges
            .add(GaugeKind::PcieBytes, u32::from(self.node.0), bytes.max(64));
        let dma_done = outcome.drained_at + self.cfg.pcie_transfer_ns(bytes);
        self.queue.schedule(
            dma_done,
            (self.node, OEvent::DfifoDrained { key, ts }, self.ctx),
        );
    }

    fn defer(&mut self, event: OEvent) {
        self.queue.schedule(self.end, (self.node, event, self.ctx));
    }

    fn write_done(&mut self, req: ReqId, key: Key, ts: Ts, obsolete: bool) {
        self.complete(req, CompletionKind::Write, Some(key), ts, obsolete);
    }

    fn read_done(&mut self, req: ReqId, key: Key, _value: Value, ts: Ts) {
        self.complete(req, CompletionKind::Read, Some(key), ts, false);
    }

    fn persist_scope_done(&mut self, req: ReqId, _scope: ScopeId) {
        self.complete(req, CompletionKind::PersistScope, None, Ts::zero(), false);
    }
}
