//! The simulated distributed machine of §VII.
//!
//! This crate drives the `minos-core` protocol engines from a
//! discrete-event simulation with the paper's Table III latency model:
//!
//! * [`BSim`] — MINOS-B nodes: protocol on the host CPU, every message
//!   crossing the PCIe bus to a plain NIC;
//! * [`OSim`] — MINOS-O nodes: protocol offloaded to a SmartNIC with
//!   selective host/NIC coherence, vFIFO/dFIFO queues, batching, and
//!   broadcast;
//! * [`Arch`] — the seven architecture points of the Figure 12 ablation
//!   (baseline/offload × batching × broadcast);
//! * [`driver`] — the closed-loop workload driver producing the
//!   latency/throughput numbers behind Figures 4, 9, 10, 11, 13 and 14,
//!   plus the open-loop driver ([`run_open_loop`] / [`run_slo_curve`])
//!   replaying Poisson arrival schedules for latency-vs-offered-load
//!   (SLO) curves.
//!
//! # Example: one write on the simulated 5-node machine
//!
//! ```
//! use minos_net::{driver, Arch};
//! use minos_types::{DdpModel, PersistencyModel, SimConfig};
//! use minos_workload::WorkloadSpec;
//!
//! let spec = WorkloadSpec::ycsb_default()
//!     .with_records(100)
//!     .with_requests_per_node(20);
//! let result = driver::run(
//!     Arch::baseline(),
//!     &SimConfig::paper_defaults(),
//!     DdpModel::lin(PersistencyModel::Synchronous),
//!     &spec,
//!     7,
//! );
//! assert!(result.write_lat.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod bsim;
pub mod driver;
mod osim;
mod timing;

pub use arch::Arch;
pub use bsim::BSim;
pub use driver::{
    run_observed, run_observed_sharded, run_open_loop, run_open_loop_sharded,
    run_open_loop_sharded_traced, run_rolling_restart, run_sharded, run_slo_curve,
    run_with_clients, AvailabilityRun, CompletionKind, CompletionRec, ObservedRun, OpenLoopResult,
    ParMode, RunResult, ShardedOpenLoop,
};
pub use osim::OSim;
pub use timing::{catchup_ns, meta_cost};
