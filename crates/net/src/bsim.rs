//! The simulated MINOS-B machine: protocol on host CPUs, plain NICs.

use crate::arch::Arch;
use crate::driver::{CompletionKind, CompletionRec};
use crate::timing::{self, DISPATCH_NS};
use minos_core::obs::{GaugeKind, GaugeSet, SharedSink, TraceClock, Tracer, GAUGE_NODE_ALL};
use minos_core::runtime::{self, ActionSink, DispatchStats, Dispatcher, Transport};
use minos_core::{Action, DelayClass, Event, NodeEngine, ReqId, Side};
use minos_sim::{CorePool, DepthTracker, EventQueue, Resource, Time};
use minos_types::{DdpModel, Key, Message, MessageKind, NodeId, ScopeId, SimConfig, Ts, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-node sender-side hardware resources. The receive-side PCIe
/// resources live in a separate array on [`BSim`] so a dispatch handler
/// can borrow its own node's sender resources and every peer's receiver
/// at once.
#[derive(Debug, Clone)]
struct NodeRes {
    cores: CorePool,
    /// Host→NIC PCIe bandwidth (one direction).
    pcie_tx: Resource,
    /// NIC send engine (serializes outgoing messages).
    nic_tx: Resource,
    /// Telemetry companion: host send-queue (PCIe submission) depth.
    pcie_depth: DepthTracker,
    /// Telemetry companion: NIC wire-TX queue depth.
    nic_depth: DepthTracker,
}

/// Per-write instrumentation for the Figure 4 communication/computation
/// breakdown (§IV).
#[derive(Debug, Clone, Copy, Default)]
struct TxTrace {
    first_inv_deposit: Time,
    last_ack_arrival: Time,
    foll_handle_total: Time,
    foll_handles: u32,
}

/// The MINOS-B discrete-event simulation.
///
/// Every protocol step runs on host cores; every message pays PCIe both
/// ways plus the NIC send cost and the network link. The [`Arch`] flags
/// graft batching/broadcast NIC capabilities onto the baseline for the
/// Figure 12 ablation.
#[derive(Debug)]
pub struct BSim {
    cfg: SimConfig,
    arch: Arch,
    engines: Vec<NodeEngine>,
    dispatchers: Vec<Dispatcher>,
    queue: EventQueue<(NodeId, Event)>,
    nodes: Vec<NodeRes>,
    /// NIC→host PCIe bandwidth, indexed by receiving node.
    pcie_rx: Vec<Resource>,
    completions: Vec<CompletionRec>,
    traces: HashMap<(Key, Ts), TxTrace>,
    next_req: u64,
    /// Virtual-clock source shared with attached tracers: holds the
    /// simulated time of the event being dispatched.
    vclock: Option<Arc<AtomicU64>>,
    /// Resource telemetry, sampled every `cfg.telemetry_tick_ns` of
    /// virtual time (PCIe bytes and batch fill accumulate event-driven).
    gauges: GaugeSet,
    /// Next virtual-time telemetry sample point.
    next_sample: Time,
    /// Completions already handed out through `drain_completions` (for
    /// the in-flight gauge).
    drained: u64,
}

impl BSim {
    /// Builds the simulation for `cfg.nodes` nodes running `model`.
    #[must_use]
    pub fn new(cfg: SimConfig, arch: Arch, model: DdpModel) -> Self {
        assert!(!arch.offload, "BSim models non-offloaded architectures");
        let n = cfg.nodes;
        BSim {
            engines: (0..n)
                .map(|i| NodeEngine::new(NodeId(i as u16), n, model))
                .collect(),
            dispatchers: vec![Dispatcher::new(); n],
            nodes: (0..n)
                .map(|_| NodeRes {
                    cores: CorePool::new(cfg.host_cores),
                    pcie_tx: Resource::new(),
                    nic_tx: Resource::new(),
                    pcie_depth: DepthTracker::new(),
                    nic_depth: DepthTracker::new(),
                })
                .collect(),
            pcie_rx: vec![Resource::new(); n],
            queue: EventQueue::new(),
            completions: Vec::new(),
            traces: HashMap::new(),
            next_req: 1,
            vclock: None,
            gauges: GaugeSet::new(),
            next_sample: 0,
            drained: 0,
            cfg,
            arch,
        }
    }

    /// Attaches observability sinks to every node's dispatcher. Records
    /// are stamped with simulated time (a virtual clock that tracks the
    /// event queue), so traces replay on the same axis as the DES.
    pub fn attach_tracer(&mut self, sinks: Vec<SharedSink>) {
        let source = Arc::new(AtomicU64::new(0));
        for (i, d) in self.dispatchers.iter_mut().enumerate() {
            d.set_tracer(Some(Tracer::new(
                NodeId(i as u16),
                TraceClock::virtual_time(Arc::clone(&source)),
                sinks.clone(),
            )));
        }
        self.vclock = Some(source);
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Pre-loads a record on every node.
    pub fn load_all(&mut self, key: Key, value: Value) {
        for e in &mut self.engines {
            e.load_record(key, value.clone());
        }
    }

    /// Submits a client write at `node`, `at` the given time.
    pub fn submit_write(
        &mut self,
        at: Time,
        node: NodeId,
        key: Key,
        value: Value,
        scope: Option<ScopeId>,
    ) -> ReqId {
        let req = self.fresh_req();
        self.queue.schedule(
            at,
            (
                node,
                Event::ClientWrite {
                    key,
                    value,
                    scope,
                    req,
                },
            ),
        );
        req
    }

    /// Submits a client read.
    pub fn submit_read(&mut self, at: Time, node: NodeId, key: Key) -> ReqId {
        let req = self.fresh_req();
        self.queue
            .schedule(at, (node, Event::ClientRead { key, req }));
        req
    }

    /// Submits a `[PERSIST]sc`.
    pub fn submit_persist_scope(&mut self, at: Time, node: NodeId, scope: ScopeId) -> ReqId {
        let req = self.fresh_req();
        self.queue
            .schedule(at, (node, Event::ClientPersistScope { scope, req }));
        req
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    /// Drains the completions recorded since the last call.
    pub fn drain_completions(&mut self) -> Vec<CompletionRec> {
        let out = std::mem::take(&mut self.completions);
        self.drained += out.len() as u64;
        out
    }

    /// The resource-telemetry gauges accumulated so far.
    #[must_use]
    pub fn gauges(&self) -> &GaugeSet {
        &self.gauges
    }

    /// Samples the level gauges at virtual time `t` when a telemetry
    /// tick boundary has been crossed (one sample per crossing).
    fn sample_gauges(&mut self, t: Time) {
        let tick = self.cfg.telemetry_tick_ns;
        if tick == 0 || t < self.next_sample {
            return;
        }
        self.next_sample = (t / tick + 1) * tick;
        for (i, res) in self.nodes.iter_mut().enumerate() {
            let node = i as u32;
            self.gauges.observe(
                GaugeKind::HostSendQueue,
                node,
                res.pcie_depth.depth(t) as u64,
            );
            self.gauges
                .observe(GaugeKind::NicSendQueue, node, res.nic_depth.depth(t) as u64);
            self.gauges.observe(
                GaugeKind::LockTableSize,
                node,
                self.engines[i].locked_records() as u64,
            );
        }
        let issued = self.next_req - 1;
        let done = self.drained + self.completions.len() as u64;
        self.gauges.observe(
            GaugeKind::InflightTxs,
            GAUGE_NODE_ALL,
            issued.saturating_sub(done),
        );
    }

    /// Access to a node's engine (assertions, state dumps).
    #[must_use]
    pub fn engine(&self, node: NodeId) -> &NodeEngine {
        &self.engines[node.0 as usize]
    }

    /// Disables RDLock snatching on every node (the §III-A design-choice
    /// ablation).
    pub fn disable_snatching(&mut self) {
        for e in &mut self.engines {
            e.set_snatch_enabled(false);
        }
    }

    /// Per-node dispatch statistics (protocol actions interpreted for
    /// `node` so far).
    #[must_use]
    pub fn dispatch_stats(&self, node: NodeId) -> &DispatchStats {
        self.dispatchers[node.0 as usize].stats()
    }

    /// Processes one simulated event. Returns false when idle.
    pub fn step(&mut self) -> bool {
        let Some((t, (node, ev))) = self.queue.pop() else {
            return false;
        };
        let ni = node.0 as usize;
        if let Some(v) = &self.vclock {
            v.store(t, Ordering::Relaxed);
        }
        self.sample_gauges(t);

        // Instrumentation: acknowledgment arrivals close the comm window.
        if let Event::Message { msg, .. } = &ev {
            if msg.is_ack() {
                if let (Some(key), Some(ts)) = (msg.key(), msg.ts()) {
                    if let Some(tr) = self.traces.get_mut(&(key, ts)) {
                        tr.last_ack_arrival = tr.last_ack_arrival.max(t);
                    }
                }
            }
        }
        let inv_key = match &ev {
            Event::Message {
                msg: Message::Inv { key, ts, .. },
                ..
            } => Some((*key, *ts)),
            _ => None,
        };

        let mut handler = BSimHandler {
            cfg: &self.cfg,
            arch: self.arch,
            node,
            t,
            end: t,
            inv_key,
            res: &mut self.nodes[ni],
            peer_rx: &mut self.pcie_rx,
            queue: &mut self.queue,
            completions: &mut self.completions,
            traces: &mut self.traces,
            gauges: &mut self.gauges,
        };
        self.dispatchers[ni].dispatch(&mut self.engines[ni], ev, &mut handler);
        true
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }
}

/// The DES dispatch handler for one event at one node: models the host
/// send queue → PCIe → NIC → wire → NIC → PCIe receive path and charges
/// compute to the node's core pool. Created fresh per [`BSim::step`].
struct BSimHandler<'a> {
    cfg: &'a SimConfig,
    arch: Arch,
    node: NodeId,
    /// Event arrival time.
    t: Time,
    /// Core-release time — when the emitted actions take effect. Set by
    /// [`ActionSink::begin`] once the compute charge is known.
    end: Time,
    inv_key: Option<(Key, Ts)>,
    res: &'a mut NodeRes,
    peer_rx: &'a mut [Resource],
    queue: &'a mut EventQueue<(NodeId, Event)>,
    completions: &'a mut Vec<CompletionRec>,
    traces: &'a mut HashMap<(Key, Ts), TxTrace>,
    gauges: &'a mut GaugeSet,
}

impl BSimHandler<'_> {
    /// PCIe cost of one message: §IV — messages are "taken one at a time
    /// from the send queue, transferred along the slow PCIe bus", so the
    /// full latency+bandwidth time occupies the bus (no pipelining).
    fn pcie_msg_ns(&self, bytes: u64) -> Time {
        self.cfg.pcie_transfer_ns(bytes.max(64))
    }

    /// Occupies the host→NIC PCIe bus for `bytes` starting at `from`,
    /// feeding the send-queue-depth tracker and the PCIe-byte counter.
    fn pcie_tx(&mut self, from: Time, bytes: u64) -> Time {
        let done = self.res.pcie_tx.acquire(from, self.pcie_msg_ns(bytes));
        self.res.pcie_depth.on_acquire(done);
        self.gauges
            .add(GaugeKind::PcieBytes, u32::from(self.node.0), bytes.max(64));
        done
    }

    /// Occupies the NIC send engine, feeding the TX-queue-depth tracker.
    fn nic_tx(&mut self, from: Time, cost: Time) -> Time {
        let depart = self.res.nic_tx.acquire(from, cost);
        self.res.nic_depth.on_acquire(depart);
        depart
    }

    /// Wire + receiver-side path shared by unicast and fan-out.
    fn deliver(&mut self, to: NodeId, depart: Time, msg: Message) {
        let bytes = msg.wire_bytes();
        let arrival_nic = depart + timing::link_time(self.cfg, &msg);
        let cost = self.pcie_msg_ns(bytes);
        let arrival_host = self.peer_rx[to.0 as usize].acquire(arrival_nic, cost);
        self.gauges
            .add(GaugeKind::PcieBytes, u32::from(to.0), bytes.max(64));
        self.queue.schedule(
            arrival_host,
            (
                to,
                Event::Message {
                    from: self.node,
                    msg,
                },
            ),
        );
    }
}

impl Transport for BSimHandler<'_> {
    /// Delivers `msg` to `to`: host send queue → PCIe → NIC → wire →
    /// NIC → PCIe → host receive queue.
    fn send(&mut self, to: NodeId, msg: Message) {
        let bytes = msg.wire_bytes();
        let pcie_done = self.pcie_tx(self.end, bytes);
        let depart = self.nic_tx(pcie_done, timing::send_cost(self.cfg, &msg));
        self.deliver(to, depart, msg);
    }

    /// The Coordinator's INV/VAL fan-out, shaped by the batching and
    /// broadcast capabilities (§IV: "the multiple INV messages in a
    /// transaction are sent one at a time" on the baseline).
    fn broadcast(&mut self, dests: &[NodeId], msg: Message) {
        let deposit = self.end;
        // Open the Figure 4 communication window at the send-queue
        // deposit of the first INV.
        if msg.kind() == MessageKind::Inv {
            if let (Some(key), Some(ts)) = (msg.key(), msg.ts()) {
                let tr = self.traces.entry((key, ts)).or_default();
                if tr.first_inv_deposit == 0 {
                    tr.first_inv_deposit = deposit;
                }
            }
        }

        let bytes = msg.wire_bytes();
        let send = timing::send_cost(self.cfg, &msg);
        let gap = self.cfg.inter_msg_gap_ns;

        if self.arch.batching {
            // One descriptor (payload + an 8-byte entry per destination).
            let desc = bytes + 8 * dests.len() as u64;
            let pcie_done = self.pcie_tx(deposit, desc);
            self.gauges.observe(
                GaugeKind::BatchFill,
                u32::from(self.node.0),
                dests.len() as u64,
            );
            if self.arch.broadcast {
                // Deposit once; the broadcast FSM replicates on the wire.
                let depart = self.nic_tx(pcie_done, send);
                for &d in dests {
                    self.deliver(d, depart, msg.clone());
                }
            } else {
                // The NIC must unpack the batch, then send serially.
                let base = pcie_done + self.cfg.batch_unpack_ns;
                for &d in dests {
                    let depart = self.nic_tx(base, send + gap);
                    self.deliver(d, depart, msg.clone());
                }
            }
        } else {
            // One PCIe transfer per destination, serialized.
            let mut first = true;
            for &d in dests {
                let pcie_done = self.pcie_tx(deposit, bytes);
                let cost = if self.arch.broadcast {
                    // The FSM only pays the prepare cost once.
                    if first {
                        send
                    } else {
                        0
                    }
                } else {
                    send + gap
                };
                first = false;
                let depart = self.nic_tx(pcie_done, cost);
                self.deliver(d, depart, msg.clone());
            }
        }
    }
}

impl ActionSink for BSimHandler<'_> {
    fn begin(&mut self, actions: &[Action]) {
        // Charge compute: dispatch + every meta hint, on a host core.
        let cost: Time = DISPATCH_NS
            + runtime::meta_ops(actions)
                .map(|op| timing::meta_cost(self.cfg, Side::Host, *op))
                .sum::<Time>();
        self.end = self.res.cores.acquire(self.t, cost);

        if let Some(k) = self.inv_key {
            // The paper's comm measure subtracts the average time a
            // Follower takes to handle an INV (Lines 26-40), which
            // includes the critical-path NVM persist of Line 39.
            let persist: Time = runtime::foreground_persist_bytes(actions)
                .map(|bytes| self.cfg.persist_ns(bytes))
                .sum();
            let tr = self.traces.entry(k).or_default();
            tr.foll_handle_total += cost + persist;
            tr.foll_handles += 1;
        }
    }

    fn persist(&mut self, key: Key, ts: Ts, value: Value, _background: bool) {
        // The CloudLab machine emulates NVM by spinning the issuing core
        // for the persist latency (Table II), so the persist occupies a
        // host core rather than a device port.
        let d = self.cfg.persist_ns(value.len() as u64);
        let done = self.res.cores.acquire(self.end, d);
        self.queue
            .schedule(done, (self.node, Event::PersistDone { key, ts }));
    }

    fn redirect(&mut self, to: NodeId, event: Event) {
        // Client re-submission at a replica: one wire hop.
        let arrival = self.end
            + timing::link_time(
                self.cfg,
                &Message::ReadReq {
                    key: Key(0),
                    token: 0,
                },
            );
        self.queue.schedule(arrival, (to, event));
    }

    fn defer(&mut self, event: Event, _class: DelayClass) {
        self.queue.schedule(self.end, (self.node, event));
    }

    fn write_done(&mut self, req: ReqId, key: Key, ts: Ts, obsolete: bool) {
        let comm_ns = self.traces.remove(&(key, ts)).map(|tr| {
            let avg_handle = if tr.foll_handles > 0 {
                tr.foll_handle_total / Time::from(tr.foll_handles)
            } else {
                0
            };
            tr.last_ack_arrival
                .saturating_sub(tr.first_inv_deposit)
                .saturating_sub(avg_handle)
        });
        self.completions.push(CompletionRec {
            req,
            node: self.node,
            at: self.end,
            kind: CompletionKind::Write,
            key: Some(key),
            ts,
            obsolete,
            comm_ns,
        });
    }

    fn read_done(&mut self, req: ReqId, key: Key, _value: Value, ts: Ts) {
        self.completions.push(CompletionRec {
            req,
            node: self.node,
            at: self.end,
            kind: CompletionKind::Read,
            key: Some(key),
            ts,
            obsolete: false,
            comm_ns: None,
        });
    }

    fn persist_scope_done(&mut self, req: ReqId, _scope: ScopeId) {
        self.completions.push(CompletionRec {
            req,
            node: self.node,
            at: self.end,
            kind: CompletionKind::PersistScope,
            key: None,
            ts: Ts::zero(),
            obsolete: false,
            comm_ns: None,
        });
    }
}
