//! The simulated MINOS-B machine: protocol on host CPUs, plain NICs.

use crate::arch::Arch;
use crate::driver::{CompletionKind, CompletionRec};
use crate::timing::{self, DISPATCH_NS};
use minos_core::{Action, Event, NodeEngine, ReqId, Side};
use minos_sim::{CorePool, EventQueue, Resource, Time};
use minos_types::{DdpModel, Key, Message, MessageKind, NodeId, ScopeId, SimConfig, Ts, Value};
use std::collections::HashMap;

/// Per-node hardware resources.
#[derive(Debug, Clone)]
struct NodeRes {
    cores: CorePool,
    /// Host→NIC PCIe bandwidth (one direction).
    pcie_tx: Resource,
    /// NIC→host PCIe bandwidth.
    pcie_rx: Resource,
    /// NIC send engine (serializes outgoing messages).
    nic_tx: Resource,
}

/// Per-write instrumentation for the Figure 4 communication/computation
/// breakdown (§IV).
#[derive(Debug, Clone, Copy, Default)]
struct TxTrace {
    first_inv_deposit: Time,
    last_ack_arrival: Time,
    foll_handle_total: Time,
    foll_handles: u32,
}

/// The MINOS-B discrete-event simulation.
///
/// Every protocol step runs on host cores; every message pays PCIe both
/// ways plus the NIC send cost and the network link. The [`Arch`] flags
/// graft batching/broadcast NIC capabilities onto the baseline for the
/// Figure 12 ablation.
#[derive(Debug)]
pub struct BSim {
    cfg: SimConfig,
    arch: Arch,
    engines: Vec<NodeEngine>,
    queue: EventQueue<(NodeId, Event)>,
    nodes: Vec<NodeRes>,
    completions: Vec<CompletionRec>,
    traces: HashMap<(Key, Ts), TxTrace>,
    next_req: u64,
}

impl BSim {
    /// Builds the simulation for `cfg.nodes` nodes running `model`.
    #[must_use]
    pub fn new(cfg: SimConfig, arch: Arch, model: DdpModel) -> Self {
        assert!(!arch.offload, "BSim models non-offloaded architectures");
        let n = cfg.nodes;
        BSim {
            engines: (0..n)
                .map(|i| NodeEngine::new(NodeId(i as u16), n, model))
                .collect(),
            nodes: (0..n)
                .map(|_| NodeRes {
                    cores: CorePool::new(cfg.host_cores),
                    pcie_tx: Resource::new(),
                    pcie_rx: Resource::new(),
                    nic_tx: Resource::new(),
                })
                .collect(),
            queue: EventQueue::new(),
            completions: Vec::new(),
            traces: HashMap::new(),
            next_req: 1,
            cfg,
            arch,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Pre-loads a record on every node.
    pub fn load_all(&mut self, key: Key, value: Value) {
        for e in &mut self.engines {
            e.load_record(key, value.clone());
        }
    }

    /// Submits a client write at `node`, `at` the given time.
    pub fn submit_write(
        &mut self,
        at: Time,
        node: NodeId,
        key: Key,
        value: Value,
        scope: Option<ScopeId>,
    ) -> ReqId {
        let req = self.fresh_req();
        self.queue.schedule(
            at,
            (
                node,
                Event::ClientWrite {
                    key,
                    value,
                    scope,
                    req,
                },
            ),
        );
        req
    }

    /// Submits a client read.
    pub fn submit_read(&mut self, at: Time, node: NodeId, key: Key) -> ReqId {
        let req = self.fresh_req();
        self.queue.schedule(at, (node, Event::ClientRead { key, req }));
        req
    }

    /// Submits a `[PERSIST]sc`.
    pub fn submit_persist_scope(&mut self, at: Time, node: NodeId, scope: ScopeId) -> ReqId {
        let req = self.fresh_req();
        self.queue
            .schedule(at, (node, Event::ClientPersistScope { scope, req }));
        req
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    /// Drains the completions recorded since the last call.
    pub fn drain_completions(&mut self) -> Vec<CompletionRec> {
        std::mem::take(&mut self.completions)
    }

    /// Access to a node's engine (assertions, state dumps).
    #[must_use]
    pub fn engine(&self, node: NodeId) -> &NodeEngine {
        &self.engines[node.0 as usize]
    }

    /// Disables RDLock snatching on every node (the §III-A design-choice
    /// ablation).
    pub fn disable_snatching(&mut self) {
        for e in &mut self.engines {
            e.set_snatch_enabled(false);
        }
    }

    /// Processes one simulated event. Returns false when idle.
    pub fn step(&mut self) -> bool {
        let Some((t, (node, ev))) = self.queue.pop() else {
            return false;
        };
        let ni = node.0 as usize;

        // Instrumentation: acknowledgment arrivals close the comm window.
        if let Event::Message { msg, .. } = &ev {
            if msg.is_ack() {
                if let (Some(key), Some(ts)) = (msg.key(), msg.ts()) {
                    if let Some(tr) = self.traces.get_mut(&(key, ts)) {
                        tr.last_ack_arrival = tr.last_ack_arrival.max(t);
                    }
                }
            }
        }
        let inv_key = match &ev {
            Event::Message {
                msg: Message::Inv { key, ts, .. },
                ..
            } => Some((*key, *ts)),
            _ => None,
        };

        let mut out = Vec::new();
        self.engines[ni].on_event(ev, &mut out);

        // Charge compute: dispatch + every meta hint, on a host core.
        let cost: Time = DISPATCH_NS
            + out
                .iter()
                .filter_map(|a| match a {
                    Action::Meta(op) => Some(timing::meta_cost(&self.cfg, Side::Host, *op)),
                    _ => None,
                })
                .sum::<Time>();
        let end = self.nodes[ni].cores.acquire(t, cost);

        if let Some(k) = inv_key {
            // The paper's comm measure subtracts the average time a
            // Follower takes to handle an INV (Lines 26-40), which
            // includes the critical-path NVM persist of Line 39.
            let persist: Time = out
                .iter()
                .filter_map(|a| match a {
                    Action::Persist {
                        value,
                        background: false,
                        ..
                    } => Some(self.cfg.persist_ns(value.len() as u64)),
                    _ => None,
                })
                .sum();
            let tr = self.traces.entry(k).or_default();
            tr.foll_handle_total += cost + persist;
            tr.foll_handles += 1;
        }

        for a in out {
            self.apply_action(node, end, a);
        }
        true
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }

    fn apply_action(&mut self, node: NodeId, end: Time, a: Action) {
        let ni = node.0 as usize;
        match a {
            Action::SendToFollowers { msg } => self.fanout(node, end, msg),
            Action::Redirect { to, event } => {
                // Client re-submission at a replica: one wire hop.
                let arrival = end + timing::link_time(&self.cfg, &Message::ReadReq {
                    key: Key(0),
                    token: 0,
                });
                self.queue.schedule(arrival, (to, event));
            }
            Action::Send { to, msg } => self.unicast(node, end, to, msg),
            Action::Persist { key, ts, value, .. } => {
                // The CloudLab machine emulates NVM by spinning the
                // issuing core for the persist latency (Table II), so the
                // persist occupies a host core rather than a device port.
                let d = self.cfg.persist_ns(value.len() as u64);
                let done = self.nodes[ni].cores.acquire(end, d);
                self.queue.schedule(done, (node, Event::PersistDone { key, ts }));
            }
            Action::Defer { event, .. } => self.queue.schedule(end, (node, event)),
            Action::WriteDone {
                req,
                key,
                ts,
                obsolete,
            } => {
                let comm_ns = self.traces.remove(&(key, ts)).map(|tr| {
                    let avg_handle = if tr.foll_handles > 0 {
                        tr.foll_handle_total / Time::from(tr.foll_handles)
                    } else {
                        0
                    };
                    tr.last_ack_arrival
                        .saturating_sub(tr.first_inv_deposit)
                        .saturating_sub(avg_handle)
                });
                self.completions.push(CompletionRec {
                    req,
                    node,
                    at: end,
                    kind: CompletionKind::Write,
                    obsolete,
                    comm_ns,
                });
            }
            Action::ReadDone { req, .. } => self.completions.push(CompletionRec {
                req,
                node,
                at: end,
                kind: CompletionKind::Read,
                obsolete: false,
                comm_ns: None,
            }),
            Action::PersistScopeDone { req, .. } => self.completions.push(CompletionRec {
                req,
                node,
                at: end,
                kind: CompletionKind::PersistScope,
                obsolete: false,
                comm_ns: None,
            }),
            Action::Meta(_) => {}
        }
    }

    /// PCIe cost of one message: §IV — messages are "taken one at a time
    /// from the send queue, transferred along the slow PCIe bus", so the
    /// full latency+bandwidth time occupies the bus (no pipelining).
    fn pcie_msg_ns(&self, bytes: u64) -> Time {
        self.cfg.pcie_transfer_ns(bytes.max(64))
    }

    /// Delivers `msg` from `node` to `to`: host send queue → PCIe → NIC →
    /// wire → NIC → PCIe → host receive queue.
    fn unicast(&mut self, node: NodeId, deposit: Time, to: NodeId, msg: Message) {
        let ni = node.0 as usize;
        let bytes = msg.wire_bytes();
        let cost = self.pcie_msg_ns(bytes);
        let pcie_done = self.nodes[ni].pcie_tx.acquire(deposit, cost);
        let depart = self.nodes[ni]
            .nic_tx
            .acquire(pcie_done, timing::send_cost(&self.cfg, &msg));
        self.deliver(node, to, depart, msg);
    }

    /// Wire + receiver-side path shared by unicast and fan-out.
    fn deliver(&mut self, from: NodeId, to: NodeId, depart: Time, msg: Message) {
        let bytes = msg.wire_bytes();
        let arrival_nic = depart + timing::link_time(&self.cfg, &msg);
        let ti = to.0 as usize;
        let cost = self.pcie_msg_ns(bytes);
        let arrival_host = self.nodes[ti].pcie_rx.acquire(arrival_nic, cost);
        self.queue
            .schedule(arrival_host, (to, Event::Message { from, msg }));
    }

    /// The Coordinator's INV/VAL fan-out, shaped by the batching and
    /// broadcast capabilities (§IV: "the multiple INV messages in a
    /// transaction are sent one at a time" on the baseline).
    fn fanout(&mut self, node: NodeId, deposit: Time, msg: Message) {
        // Open the Figure 4 communication window at the send-queue
        // deposit of the first INV.
        if msg.kind() == MessageKind::Inv {
            if let (Some(key), Some(ts)) = (msg.key(), msg.ts()) {
                let tr = self.traces.entry((key, ts)).or_default();
                if tr.first_inv_deposit == 0 {
                    tr.first_inv_deposit = deposit;
                }
            }
        }

        let ni = node.0 as usize;
        let dests: Vec<NodeId> = self.engines[ni].fanout_targets(msg.key());
        let bytes = msg.wire_bytes();
        let send = timing::send_cost(&self.cfg, &msg);
        let gap = self.cfg.inter_msg_gap_ns;

        if self.arch.batching {
            // One descriptor (payload + an 8-byte entry per destination).
            let desc = bytes + 8 * dests.len() as u64;
            let cost = self.pcie_msg_ns(desc);
            let pcie_done = self.nodes[ni].pcie_tx.acquire(deposit, cost);
            if self.arch.broadcast {
                // Deposit once; the broadcast FSM replicates on the wire.
                let depart = self.nodes[ni].nic_tx.acquire(pcie_done, send);
                for d in dests {
                    self.deliver(node, d, depart, msg.clone());
                }
            } else {
                // The NIC must unpack the batch, then send serially.
                let base = pcie_done + self.cfg.batch_unpack_ns;
                for d in dests {
                    let depart = self.nodes[ni].nic_tx.acquire(base, send + gap);
                    self.deliver(node, d, depart, msg.clone());
                }
            }
        } else {
            // One PCIe transfer per destination, serialized.
            let mut first = true;
            let cost = self.pcie_msg_ns(bytes);
            for d in dests {
                let pcie_done = self.nodes[ni].pcie_tx.acquire(deposit, cost);
                let cost = if self.arch.broadcast {
                    // The FSM only pays the prepare cost once.
                    if first {
                        send
                    } else {
                        0
                    }
                } else {
                    send + gap
                };
                first = false;
                let depart = self.nodes[ni].nic_tx.acquire(pcie_done, cost);
                self.deliver(node, d, depart, msg.clone());
            }
        }
    }
}
