//! The simulated MINOS-B machine: protocol on host CPUs, plain NICs.

use crate::arch::Arch;
use crate::driver::{CompletionKind, CompletionRec};
use crate::timing::{self, DISPATCH_NS};
use minos_core::obs::{GaugeKind, GaugeSet, SharedSink, TraceClock, Tracer, GAUGE_NODE_ALL};
use minos_core::runtime::{self, ActionSink, DispatchStats, Dispatcher, ShardRouter, Transport};
use minos_core::{Action, DelayClass, Event, NodeEngine, ReqId, Side};
use minos_sim::{CorePool, DepthTracker, EventQueue, Resource, Time};
use minos_types::wire::TraceCtx;
use minos_types::{
    DdpModel, Key, MembershipView, Message, MessageKind, NodeId, ScopeId, ShardMap, SimConfig, Ts,
    Value,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-node sender-side hardware resources. The receive-side PCIe
/// resources live in a separate array on [`BSim`] so a dispatch handler
/// can borrow its own node's sender resources and every peer's receiver
/// at once.
#[derive(Debug, Clone)]
struct NodeRes {
    cores: CorePool,
    /// Host→NIC PCIe bandwidth (one direction).
    pcie_tx: Resource,
    /// NIC send engine (serializes outgoing messages).
    nic_tx: Resource,
    /// Telemetry companion: host send-queue (PCIe submission) depth.
    pcie_depth: DepthTracker,
    /// Telemetry companion: NIC wire-TX queue depth.
    nic_depth: DepthTracker,
}

/// Per-write instrumentation for the Figure 4 communication/computation
/// breakdown (§IV).
#[derive(Debug, Clone, Copy, Default)]
struct TxTrace {
    first_inv_deposit: Time,
    last_ack_arrival: Time,
    foll_handle_total: Time,
    foll_handles: u32,
}

/// A scheduled membership action, applied when simulated time reaches
/// it (before any protocol event at a later instant).
#[derive(Debug, Clone, Copy)]
pub(crate) enum ViewChange {
    /// Kill the node: volatile loss, survivors shrink their quorums.
    Crash(NodeId),
    /// Start the node's rejoin: donor copy now, re-admittance after the
    /// catch-up transfer time.
    BeginRejoin {
        /// Rejoining node.
        node: NodeId,
        /// Serving peer that streams the catch-up delta.
        donor: NodeId,
    },
    /// Catch-up done: the node re-enters every quorum and the epoch
    /// advances (scheduled internally by `BeginRejoin`).
    Readmit(NodeId),
}

/// Lease duration granted by the simulated views. Generous — the DES
/// failure detector is the scheduled [`ViewChange`] list, not lease
/// expiry; leases document liveness, they don't drive it here.
pub(crate) const SIM_LEASE_NS: Time = 1 << 40;

/// The MINOS-B discrete-event simulation.
///
/// Every protocol step runs on host cores; every message pays PCIe both
/// ways plus the NIC send cost and the network link. The [`Arch`] flags
/// graft batching/broadcast NIC capabilities onto the baseline for the
/// Figure 12 ablation.
#[derive(Debug)]
pub struct BSim {
    cfg: SimConfig,
    arch: Arch,
    engines: Vec<NodeEngine>,
    dispatchers: Vec<Dispatcher>,
    /// Scheduled deliveries: destination, event, and the trace context
    /// of the dispatch that caused the event (`None` for client
    /// submissions — admission mints the trace).
    queue: EventQueue<(NodeId, Event, Option<TraceCtx>)>,
    nodes: Vec<NodeRes>,
    /// NIC→host PCIe bandwidth, indexed by receiving node.
    pcie_rx: Vec<Resource>,
    completions: Vec<CompletionRec>,
    traces: HashMap<(Key, Ts), TxTrace>,
    next_req: u64,
    /// Virtual-clock source shared with attached tracers: holds the
    /// simulated time of the event being dispatched.
    vclock: Option<Arc<AtomicU64>>,
    /// Resource telemetry, sampled every `cfg.telemetry_tick_ns` of
    /// virtual time (PCIe bytes and batch fill accumulate event-driven).
    gauges: GaugeSet,
    /// Next virtual-time telemetry sample point.
    next_sample: Time,
    /// Completions already handed out through `drain_completions` (for
    /// the in-flight gauge).
    drained: u64,
    /// Events processed by [`BSim::step`] so far (view changes, dropped
    /// frames to dead nodes, and dispatched protocol events alike) —
    /// the denominator of the simulator's events/sec speed cells.
    events: u64,
    /// Key → shard-group routing and multi-op barriers; identity when the
    /// simulation is unsharded.
    router: ShardRouter,
    /// Requests routed off their origin node: req → origin. Their
    /// completions pay the return routing hop at drain time.
    routed: HashMap<ReqId, NodeId>,
    /// Barrier parents: parent req → (origin, completion kind).
    parents: HashMap<ReqId, (NodeId, CompletionKind)>,
    /// Latest child completion seen per parent (the barrier release time).
    parent_hwm: HashMap<ReqId, Time>,
    /// Submitted-minus-completed keyed ops per shard (sharded only).
    inflight_by_shard: BTreeMap<u32, u64>,
    /// Scheduled membership actions, fired in time order interleaved
    /// with the protocol event queue.
    ctrl: Vec<(Time, ViewChange)>,
    /// Epoch/lease membership view; simulated time feeds the lease
    /// clock. Crashed and catching-up nodes are out of the serving set:
    /// events addressed to them are dropped (frames to a dead node are
    /// lost) and survivors exclude them from acknowledgment quorums.
    view: MembershipView,
}

impl BSim {
    /// Builds the simulation for `cfg.nodes` nodes running `model`.
    #[must_use]
    pub fn new(cfg: SimConfig, arch: Arch, model: DdpModel) -> Self {
        assert!(!arch.offload, "BSim models non-offloaded architectures");
        let n = cfg.nodes;
        BSim {
            engines: (0..n)
                .map(|i| NodeEngine::new(NodeId(i as u16), n, model))
                .collect(),
            dispatchers: vec![Dispatcher::new(); n],
            nodes: (0..n)
                .map(|_| NodeRes {
                    cores: CorePool::new(cfg.host_cores),
                    pcie_tx: Resource::new(),
                    nic_tx: Resource::new(),
                    pcie_depth: DepthTracker::new(),
                    nic_depth: DepthTracker::new(),
                })
                .collect(),
            pcie_rx: vec![Resource::new(); n],
            queue: EventQueue::new(),
            completions: Vec::new(),
            traces: HashMap::new(),
            next_req: 1,
            vclock: None,
            gauges: GaugeSet::new(),
            next_sample: 0,
            drained: 0,
            events: 0,
            router: ShardRouter::new(None),
            routed: HashMap::new(),
            parents: HashMap::new(),
            parent_hwm: HashMap::new(),
            inflight_by_shard: BTreeMap::new(),
            ctrl: Vec::new(),
            view: MembershipView::new(n, SIM_LEASE_NS, 0),
            cfg,
            arch,
        }
    }

    /// Builds a sharded simulation over `map`'s nodes: one simulation
    /// hosts every shard group, each engine holds only its shards' keys,
    /// and client ops submitted outside their key's replica group pay a
    /// routing hop (`timing::route_hop_ns`) each way.
    ///
    /// # Panics
    ///
    /// Panics if `map` does not span exactly `cfg.nodes` nodes.
    #[must_use]
    pub fn with_placement(cfg: SimConfig, arch: Arch, model: DdpModel, map: ShardMap) -> Self {
        assert_eq!(map.n_nodes(), cfg.nodes, "placement/config node mismatch");
        let mut sim = BSim::new(cfg, arch, model);
        for e in &mut sim.engines {
            e.set_placement(Some(map.clone()));
        }
        sim.router = ShardRouter::new(Some(map));
        sim
    }

    /// The placement map, if this simulation is sharded.
    #[must_use]
    pub fn placement(&self) -> Option<&ShardMap> {
        self.router.map()
    }

    /// Attaches observability sinks to every node's dispatcher. Records
    /// are stamped with simulated time (a virtual clock that tracks the
    /// event queue), so traces replay on the same axis as the DES.
    pub fn attach_tracer(&mut self, sinks: Vec<SharedSink>) {
        let source = Arc::new(AtomicU64::new(0));
        for (i, d) in self.dispatchers.iter_mut().enumerate() {
            d.set_tracer(Some(Tracer::new(
                NodeId(i as u16),
                TraceClock::virtual_time(Arc::clone(&source)),
                sinks.clone(),
            )));
        }
        self.vclock = Some(source);
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Pre-loads a record on every node that replicates it.
    pub fn load_all(&mut self, key: Key, value: Value) {
        for e in &mut self.engines {
            if e.is_replica(key) {
                e.load_record(key, value.clone());
            }
        }
    }

    fn note_submitted(&mut self, key: Key) {
        if let Some(map) = self.router.map() {
            let shard = map.shard_of(key).0;
            *self.inflight_by_shard.entry(shard).or_insert(0) += 1;
        }
    }

    /// Schedules `ev` at `coord`, charging the one-way routing hop when
    /// the op was submitted at a different node; remembers the origin so
    /// the completion pays the return hop.
    fn route_schedule(&mut self, at: Time, origin: NodeId, coord: NodeId, req: ReqId, ev: Event) {
        let at = if coord == origin {
            at
        } else {
            self.routed.insert(req, origin);
            at + timing::route_hop_ns(&self.cfg)
        };
        self.queue.schedule(at, (coord, ev, None));
    }

    /// Submits a client write at `node`, `at` the given time. On a
    /// sharded simulation the write is routed to a replica of its key's
    /// shard, paying the routing hop each way when `node` is not one.
    pub fn submit_write(
        &mut self,
        at: Time,
        node: NodeId,
        key: Key,
        value: Value,
        scope: Option<ScopeId>,
    ) -> ReqId {
        let req = self.fresh_req();
        let coord = self.router.route_write(node, key, scope);
        self.note_submitted(key);
        self.route_schedule(
            at,
            node,
            coord,
            req,
            Event::ClientWrite {
                key,
                value,
                scope,
                req,
            },
        );
        req
    }

    /// Submits a client read, routed to a serving replica.
    pub fn submit_read(&mut self, at: Time, node: NodeId, key: Key) -> ReqId {
        let req = self.fresh_req();
        let serving = self.router.serving(node, key);
        self.note_submitted(key);
        self.route_schedule(at, node, serving, req, Event::ClientRead { key, req });
        req
    }

    /// Submits a multi-key write batch: one routed child write per key,
    /// barrier-joined into the returned parent request, which completes
    /// (kind [`CompletionKind::MultiWrite`], at the latest child's
    /// completion) only once every child has.
    ///
    /// # Panics
    ///
    /// Panics if `writes` is empty.
    pub fn submit_write_multi(
        &mut self,
        at: Time,
        node: NodeId,
        writes: Vec<(Key, Value)>,
        scope: Option<ScopeId>,
    ) -> ReqId {
        assert!(!writes.is_empty(), "empty multi-key write batch");
        let req = self.fresh_req();
        let children: Vec<ReqId> = writes.iter().map(|_| self.fresh_req()).collect();
        self.router.begin_barrier(req, &children);
        self.parents.insert(req, (node, CompletionKind::MultiWrite));
        for ((key, value), child) in writes.into_iter().zip(children) {
            let coord = self.router.route_write(node, key, scope);
            self.note_submitted(key);
            self.route_schedule(
                at,
                node,
                coord,
                child,
                Event::ClientWrite {
                    key,
                    value,
                    scope,
                    req: child,
                },
            );
        }
        req
    }

    /// Submits a `[PERSIST]sc`. On a sharded simulation the flush fans
    /// out to every coordinator that scoped writes from `node` were
    /// routed to, barrier-joined into the returned parent request.
    pub fn submit_persist_scope(&mut self, at: Time, node: NodeId, scope: ScopeId) -> ReqId {
        let req = self.fresh_req();
        if self.router.map().is_some() {
            let coords = self.router.scope_coordinators(node, scope);
            let children: Vec<ReqId> = coords.iter().map(|_| self.fresh_req()).collect();
            self.router.begin_barrier(req, &children);
            self.parents
                .insert(req, (node, CompletionKind::PersistScope));
            for (coord, child) in coords.into_iter().zip(children) {
                self.route_schedule(
                    at,
                    node,
                    coord,
                    child,
                    Event::ClientPersistScope { scope, req: child },
                );
            }
        } else {
            self.queue
                .schedule(at, (node, Event::ClientPersistScope { scope, req }, None));
        }
        req
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    /// Drains the completions recorded since the last call. Routed
    /// requests pay the return hop here; barrier children are folded
    /// into their parent, which surfaces at the latest child completion.
    pub fn drain_completions(&mut self) -> Vec<CompletionRec> {
        let raw = std::mem::take(&mut self.completions);
        let mut out = Vec::with_capacity(raw.len());
        for mut rec in raw {
            if self.routed.remove(&rec.req).is_some() {
                rec.at += timing::route_hop_ns(&self.cfg);
            }
            if let Some(key) = rec.key {
                if let Some(map) = self.router.map() {
                    let shard = map.shard_of(key).0;
                    if let Some(n) = self.inflight_by_shard.get_mut(&shard) {
                        *n = n.saturating_sub(1);
                    }
                }
            }
            match self.router.parent_of(rec.req) {
                None => out.push(rec),
                Some(parent) => {
                    let hwm = self.parent_hwm.entry(parent).or_insert(0);
                    *hwm = (*hwm).max(rec.at);
                    if self.router.complete_child(rec.req).is_some() {
                        let (origin, kind) = self.parents.remove(&parent).expect("parent recorded");
                        let at = self.parent_hwm.remove(&parent).unwrap_or(rec.at);
                        out.push(CompletionRec {
                            req: parent,
                            node: origin,
                            at,
                            kind,
                            key: None,
                            ts: Ts::zero(),
                            obsolete: false,
                            comm_ns: None,
                        });
                    }
                }
            }
        }
        self.drained += out.len() as u64;
        out
    }

    /// The resource-telemetry gauges accumulated so far.
    #[must_use]
    pub fn gauges(&self) -> &GaugeSet {
        &self.gauges
    }

    /// Samples the level gauges at virtual time `t` when a telemetry
    /// tick boundary has been crossed (one sample per crossing).
    fn sample_gauges(&mut self, t: Time) {
        let tick = self.cfg.telemetry_tick_ns;
        if tick == 0 || t < self.next_sample {
            return;
        }
        self.next_sample = (t / tick + 1) * tick;
        self.gauges.observe(
            GaugeKind::EventQueueDepth,
            GAUGE_NODE_ALL,
            self.queue.len() as u64,
        );
        for (i, res) in self.nodes.iter_mut().enumerate() {
            let node = i as u32;
            self.gauges.observe(
                GaugeKind::HostSendQueue,
                node,
                res.pcie_depth.depth(t) as u64,
            );
            self.gauges
                .observe(GaugeKind::NicSendQueue, node, res.nic_depth.depth(t) as u64);
        }
        match self.router.map().cloned() {
            Some(map) => {
                for (i, e) in self.engines.iter().enumerate() {
                    let by_shard = e.locked_records_by_shard(&map);
                    for sh in map.shards_on(NodeId(i as u16)) {
                        let n = by_shard.get(&sh.0).copied().unwrap_or(0);
                        self.gauges.observe_shard(
                            GaugeKind::LockTableSize,
                            i as u32,
                            sh.0,
                            n as u64,
                        );
                    }
                }
                for (&shard, &n) in &self.inflight_by_shard {
                    self.gauges
                        .observe_shard(GaugeKind::InflightTxs, GAUGE_NODE_ALL, shard, n);
                }
            }
            None => {
                for (i, e) in self.engines.iter().enumerate() {
                    self.gauges.observe(
                        GaugeKind::LockTableSize,
                        i as u32,
                        e.locked_records() as u64,
                    );
                }
                let issued = self.next_req - 1;
                let done = self.drained + self.completions.len() as u64;
                self.gauges.observe(
                    GaugeKind::InflightTxs,
                    GAUGE_NODE_ALL,
                    issued.saturating_sub(done),
                );
            }
        }
    }

    /// Access to a node's engine (assertions, state dumps).
    #[must_use]
    pub fn engine(&self, node: NodeId) -> &NodeEngine {
        &self.engines[node.0 as usize]
    }

    /// Disables RDLock snatching on every node (the §III-A design-choice
    /// ablation).
    pub fn disable_snatching(&mut self) {
        for e in &mut self.engines {
            e.set_snatch_enabled(false);
        }
    }

    /// Per-node dispatch statistics (protocol actions interpreted for
    /// `node` so far).
    #[must_use]
    pub fn dispatch_stats(&self, node: NodeId) -> &DispatchStats {
        self.dispatchers[node.0 as usize].stats()
    }

    /// Schedules a crash of `node` at simulated time `at`: its volatile
    /// state is lost, events addressed to it from then on are dropped,
    /// survivors shrink their acknowledgment quorums, and the view epoch
    /// advances.
    pub fn schedule_crash(&mut self, at: Time, node: NodeId) {
        self.ctrl.push((at, ViewChange::Crash(node)));
    }

    /// Schedules the rejoin of a crashed `node` at `at`, with `donor` as
    /// the catch-up source. The donor copy is installed at `at`; the
    /// node re-enters the serving set (and the epoch advances) only
    /// after the catch-up transfer time [`timing::catchup_ns`] — the
    /// availability dip a rolling restart pays per node. The attempt is
    /// dropped if `node` is not down or `donor` is not serving when the
    /// action fires.
    pub fn schedule_rejoin(&mut self, at: Time, node: NodeId, donor: NodeId) {
        self.ctrl
            .push((at, ViewChange::BeginRejoin { node, donor }));
    }

    /// The epoch/lease membership view in force.
    #[must_use]
    pub fn membership(&self) -> &MembershipView {
        &self.view
    }

    /// The current view epoch.
    #[must_use]
    pub fn view_epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// Pops the earliest scheduled view change if it is due before (or
    /// at) the next protocol event.
    fn pop_ctrl_due(&mut self) -> Option<(Time, ViewChange)> {
        let idx = self
            .ctrl
            .iter()
            .enumerate()
            .min_by_key(|(_, (t, _))| *t)
            .map(|(i, _)| i)?;
        let t = self.ctrl[idx].0;
        if self.queue.peek_time().is_none_or(|evt| t <= evt) {
            Some(self.ctrl.remove(idx))
        } else {
            None
        }
    }

    /// Applies one due view change at simulated time `t`.
    fn apply_view_change(&mut self, t: Time, vc: ViewChange) {
        if let Some(v) = &self.vclock {
            v.store(t, Ordering::Relaxed);
        }
        self.sample_gauges(t);
        match vc {
            ViewChange::Crash(node) => {
                let ni = node.0 as usize;
                let n = self.engines.len();
                let model = self.engines[ni].model();
                self.engines[ni] = NodeEngine::new(node, n, model);
                self.engines[ni].set_placement(self.router.map().cloned());
                self.dispatchers[ni] = Dispatcher::new();
                if self.view.mark_down(node).is_err() {
                    return;
                }
                for i in 0..n {
                    if i != ni {
                        self.engines[i].mark_failed(node);
                    }
                }
                self.poke_all(t);
            }
            ViewChange::BeginRejoin { node, donor } => {
                if !self.view.is_serving(donor) || self.view.begin_rejoin(node).is_err() {
                    return;
                }
                let ni = node.0 as usize;
                let records: Vec<(Key, Ts, Value)> = self.engines[donor.0 as usize]
                    .keys()
                    .into_iter()
                    .filter(|&k| self.engines[ni].is_replica(k))
                    .map(|k| {
                        let e = &self.engines[donor.0 as usize];
                        (
                            k,
                            e.record_meta(k).volatile_ts,
                            e.record_value(k).unwrap_or_default(),
                        )
                    })
                    .collect();
                let bytes: u64 = records.iter().map(|(_, _, v)| v.len() as u64).sum();
                let cost = timing::catchup_ns(&self.cfg, records.len() as u64, bytes);
                for (k, ts, v) in records {
                    self.engines[ni].install_recovered(k, ts, v);
                }
                self.ctrl.push((t + cost, ViewChange::Readmit(node)));
            }
            ViewChange::Readmit(node) => {
                let ni = node.0 as usize;
                for i in 0..self.engines.len() {
                    let other = NodeId(i as u16);
                    if other == node {
                        continue;
                    }
                    self.engines[i].mark_recovered(node);
                    // The rebuilt engine starts with everyone alive;
                    // teach it about peers still out of the set.
                    if !self.view.is_serving(other) {
                        self.engines[ni].mark_failed(other);
                    }
                }
                self.view
                    .complete_rejoin(node, t)
                    .expect("readmit follows begin_rejoin");
                self.poke_all(t);
            }
        }
    }

    /// Re-evaluates every serving engine's wait conditions at `t`: a
    /// view change may have made a quorum satisfiable (or a blocked
    /// transaction re-targetable).
    fn poke_all(&mut self, t: Time) {
        for i in 0..self.engines.len() {
            if !self.view.is_serving(NodeId(i as u16)) {
                continue;
            }
            let mut out = Vec::new();
            self.engines[i].poll_now(&mut out);
            if out.is_empty() {
                continue;
            }
            let mut handler = BSimHandler {
                cfg: &self.cfg,
                arch: self.arch,
                node: NodeId(i as u16),
                t,
                end: t,
                inv_key: None,
                ctx: None,
                res: &mut self.nodes[i],
                peer_rx: &mut self.pcie_rx,
                queue: &mut self.queue,
                completions: &mut self.completions,
                traces: &mut self.traces,
                gauges: &mut self.gauges,
            };
            self.dispatchers[i].run_actions(&self.engines[i], out, &mut handler);
        }
    }

    /// Events processed by [`BSim::step`] so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Processes one simulated event. Returns false when idle.
    pub fn step(&mut self) -> bool {
        if let Some((t, vc)) = self.pop_ctrl_due() {
            self.events += 1;
            self.apply_view_change(t, vc);
            return true;
        }
        let Some((t, (node, ev, ctx))) = self.queue.pop() else {
            return false;
        };
        self.events += 1;
        // A node outside the serving set neither receives nor computes:
        // frames addressed to it are lost on the wire.
        if !self.view.is_serving(node) {
            return true;
        }
        let ni = node.0 as usize;
        if let Some(v) = &self.vclock {
            v.store(t, Ordering::Relaxed);
        }
        self.sample_gauges(t);

        // Instrumentation: acknowledgment arrivals close the comm window.
        if let Event::Message { msg, .. } = &ev {
            if msg.is_ack() {
                if let (Some(key), Some(ts)) = (msg.key(), msg.ts()) {
                    if let Some(tr) = self.traces.get_mut(&(key, ts)) {
                        tr.last_ack_arrival = tr.last_ack_arrival.max(t);
                    }
                }
            }
        }
        let inv_key = match &ev {
            Event::Message {
                msg: Message::Inv { key, ts, .. },
                ..
            } => Some((*key, *ts)),
            _ => None,
        };

        let mut handler = BSimHandler {
            cfg: &self.cfg,
            arch: self.arch,
            node,
            t,
            end: t,
            inv_key,
            ctx: None,
            res: &mut self.nodes[ni],
            peer_rx: &mut self.pcie_rx,
            queue: &mut self.queue,
            completions: &mut self.completions,
            traces: &mut self.traces,
            gauges: &mut self.gauges,
        };
        self.dispatchers[ni].dispatch_ctx(&mut self.engines[ni], ev, ctx, &mut handler);
        true
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }
}

/// The DES dispatch handler for one event at one node: models the host
/// send queue → PCIe → NIC → wire → NIC → PCIe receive path and charges
/// compute to the node's core pool. Created fresh per [`BSim::step`].
struct BSimHandler<'a> {
    cfg: &'a SimConfig,
    arch: Arch,
    node: NodeId,
    /// Event arrival time.
    t: Time,
    /// Core-release time — when the emitted actions take effect. Set by
    /// [`ActionSink::begin`] once the compute charge is known.
    end: Time,
    inv_key: Option<(Key, Ts)>,
    /// The dispatching node's trace context, stamped onto every event
    /// this dispatch schedules.
    ctx: Option<TraceCtx>,
    res: &'a mut NodeRes,
    peer_rx: &'a mut [Resource],
    queue: &'a mut EventQueue<(NodeId, Event, Option<TraceCtx>)>,
    completions: &'a mut Vec<CompletionRec>,
    traces: &'a mut HashMap<(Key, Ts), TxTrace>,
    gauges: &'a mut GaugeSet,
}

impl BSimHandler<'_> {
    /// PCIe cost of one message: §IV — messages are "taken one at a time
    /// from the send queue, transferred along the slow PCIe bus", so the
    /// full latency+bandwidth time occupies the bus (no pipelining).
    fn pcie_msg_ns(&self, bytes: u64) -> Time {
        self.cfg.pcie_transfer_ns(bytes.max(64))
    }

    /// Occupies the host→NIC PCIe bus for `bytes` starting at `from`,
    /// feeding the send-queue-depth tracker and the PCIe-byte counter.
    fn pcie_tx(&mut self, from: Time, bytes: u64) -> Time {
        let done = self.res.pcie_tx.acquire(from, self.pcie_msg_ns(bytes));
        self.res.pcie_depth.on_acquire(done);
        self.gauges
            .add(GaugeKind::PcieBytes, u32::from(self.node.0), bytes.max(64));
        done
    }

    /// Occupies the NIC send engine, feeding the TX-queue-depth tracker.
    fn nic_tx(&mut self, from: Time, cost: Time) -> Time {
        let depart = self.res.nic_tx.acquire(from, cost);
        self.res.nic_depth.on_acquire(depart);
        depart
    }

    /// Wire + receiver-side path shared by unicast and fan-out.
    fn deliver(&mut self, to: NodeId, depart: Time, msg: Message) {
        let bytes = msg.wire_bytes();
        let arrival_nic = depart + timing::link_time(self.cfg, &msg);
        let cost = self.pcie_msg_ns(bytes);
        let arrival_host = self.peer_rx[to.0 as usize].acquire(arrival_nic, cost);
        self.gauges
            .add(GaugeKind::PcieBytes, u32::from(to.0), bytes.max(64));
        self.queue.schedule(
            arrival_host,
            (
                to,
                Event::Message {
                    from: self.node,
                    msg,
                },
                self.ctx,
            ),
        );
    }
}

impl Transport for BSimHandler<'_> {
    /// Delivers `msg` to `to`: host send queue → PCIe → NIC → wire →
    /// NIC → PCIe → host receive queue.
    fn send(&mut self, to: NodeId, msg: Message) {
        let bytes = msg.wire_bytes();
        let pcie_done = self.pcie_tx(self.end, bytes);
        let depart = self.nic_tx(pcie_done, timing::send_cost(self.cfg, &msg));
        self.deliver(to, depart, msg);
    }

    fn set_ctx(&mut self, ctx: Option<TraceCtx>) {
        self.ctx = ctx;
    }

    /// The Coordinator's INV/VAL fan-out, shaped by the batching and
    /// broadcast capabilities (§IV: "the multiple INV messages in a
    /// transaction are sent one at a time" on the baseline).
    fn broadcast(&mut self, dests: &[NodeId], msg: Message) {
        let deposit = self.end;
        // Open the Figure 4 communication window at the send-queue
        // deposit of the first INV.
        if msg.kind() == MessageKind::Inv {
            if let (Some(key), Some(ts)) = (msg.key(), msg.ts()) {
                let tr = self.traces.entry((key, ts)).or_default();
                if tr.first_inv_deposit == 0 {
                    tr.first_inv_deposit = deposit;
                }
            }
        }

        let bytes = msg.wire_bytes();
        let send = timing::send_cost(self.cfg, &msg);
        let gap = self.cfg.inter_msg_gap_ns;

        if self.arch.batching {
            // One descriptor (payload + an 8-byte entry per destination).
            let desc = bytes + 8 * dests.len() as u64;
            let pcie_done = self.pcie_tx(deposit, desc);
            self.gauges.observe(
                GaugeKind::BatchFill,
                u32::from(self.node.0),
                dests.len() as u64,
            );
            if self.arch.broadcast {
                // Deposit once; the broadcast FSM replicates on the wire.
                let depart = self.nic_tx(pcie_done, send);
                for &d in dests {
                    self.deliver(d, depart, msg.clone());
                }
            } else {
                // The NIC must unpack the batch, then send serially.
                let base = pcie_done + self.cfg.batch_unpack_ns;
                for &d in dests {
                    let depart = self.nic_tx(base, send + gap);
                    self.deliver(d, depart, msg.clone());
                }
            }
        } else {
            // One PCIe transfer per destination, serialized.
            let mut first = true;
            for &d in dests {
                let pcie_done = self.pcie_tx(deposit, bytes);
                let cost = if self.arch.broadcast {
                    // The FSM only pays the prepare cost once.
                    if first {
                        send
                    } else {
                        0
                    }
                } else {
                    send + gap
                };
                first = false;
                let depart = self.nic_tx(pcie_done, cost);
                self.deliver(d, depart, msg.clone());
            }
        }
    }
}

impl ActionSink for BSimHandler<'_> {
    fn begin(&mut self, actions: &[Action]) {
        // Charge compute: dispatch + every meta hint, on a host core.
        let cost: Time = DISPATCH_NS
            + runtime::meta_ops(actions)
                .map(|op| timing::meta_cost(self.cfg, Side::Host, *op))
                .sum::<Time>();
        self.end = self.res.cores.acquire(self.t, cost);

        if let Some(k) = self.inv_key {
            // The paper's comm measure subtracts the average time a
            // Follower takes to handle an INV (Lines 26-40), which
            // includes the critical-path NVM persist of Line 39.
            let persist: Time = runtime::foreground_persist_bytes(actions)
                .map(|bytes| self.cfg.persist_ns(bytes))
                .sum();
            let tr = self.traces.entry(k).or_default();
            tr.foll_handle_total += cost + persist;
            tr.foll_handles += 1;
        }
    }

    fn persist(&mut self, key: Key, ts: Ts, value: Value, _background: bool) {
        // The CloudLab machine emulates NVM by spinning the issuing core
        // for the persist latency (Table II), so the persist occupies a
        // host core rather than a device port.
        let d = self.cfg.persist_ns(value.len() as u64);
        let done = self.res.cores.acquire(self.end, d);
        self.queue
            .schedule(done, (self.node, Event::PersistDone { key, ts }, self.ctx));
    }

    fn redirect(&mut self, to: NodeId, event: Event) {
        // Client re-submission at a replica: one wire hop.
        let arrival = self.end
            + timing::link_time(
                self.cfg,
                &Message::ReadReq {
                    key: Key(0),
                    token: 0,
                },
            );
        self.queue.schedule(arrival, (to, event, self.ctx));
    }

    fn defer(&mut self, event: Event, _class: DelayClass) {
        self.queue.schedule(self.end, (self.node, event, self.ctx));
    }

    fn write_done(&mut self, req: ReqId, key: Key, ts: Ts, obsolete: bool) {
        let comm_ns = self.traces.remove(&(key, ts)).map(|tr| {
            let avg_handle = if tr.foll_handles > 0 {
                tr.foll_handle_total / Time::from(tr.foll_handles)
            } else {
                0
            };
            tr.last_ack_arrival
                .saturating_sub(tr.first_inv_deposit)
                .saturating_sub(avg_handle)
        });
        self.completions.push(CompletionRec {
            req,
            node: self.node,
            at: self.end,
            kind: CompletionKind::Write,
            key: Some(key),
            ts,
            obsolete,
            comm_ns,
        });
    }

    fn read_done(&mut self, req: ReqId, key: Key, _value: Value, ts: Ts) {
        self.completions.push(CompletionRec {
            req,
            node: self.node,
            at: self.end,
            kind: CompletionKind::Read,
            key: Some(key),
            ts,
            obsolete: false,
            comm_ns: None,
        });
    }

    fn persist_scope_done(&mut self, req: ReqId, _scope: ScopeId) {
        self.completions.push(CompletionRec {
            req,
            node: self.node,
            at: self.end,
            kind: CompletionKind::PersistScope,
            key: None,
            ts: Ts::zero(),
            obsolete: false,
            comm_ns: None,
        });
    }
}
