//! The architecture points of the Figure 12 ablation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulated architecture: MINOS-B or the Combined offload design, each
/// with or without message batching and broadcast support.
///
/// The paper groups the offload, host↔NIC coherence, and WRLock
/// elimination optimizations into one *Combined* point "because applying
/// them separately is sub-optimal" — [`Arch::offload`] corresponds to
/// Combined, and `Arch::offload().with_batching().with_broadcast()` is
/// full MINOS-O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Arch {
    /// Combined offload (SmartNIC protocol execution + coherence + no
    /// WRLock) vs. host-resident MINOS-B.
    pub offload: bool,
    /// Host↔NIC message batching.
    pub batching: bool,
    /// NIC broadcast support.
    pub broadcast: bool,
}

impl Arch {
    /// Plain MINOS-B.
    #[must_use]
    pub fn baseline() -> Self {
        Arch {
            offload: false,
            batching: false,
            broadcast: false,
        }
    }

    /// The Combined optimization group (Offl+Coh+WRLock in Figure 12).
    #[must_use]
    pub fn offload() -> Self {
        Arch {
            offload: true,
            batching: false,
            broadcast: false,
        }
    }

    /// Full MINOS-O: Combined + batching + broadcast.
    #[must_use]
    pub fn minos_o() -> Self {
        Arch {
            offload: true,
            batching: true,
            broadcast: true,
        }
    }

    /// Adds batching.
    #[must_use]
    pub fn with_batching(mut self) -> Self {
        self.batching = true;
        self
    }

    /// Adds broadcast.
    #[must_use]
    pub fn with_broadcast(mut self) -> Self {
        self.broadcast = true;
        self
    }

    /// The seven Figure 12 bars, in the paper's order.
    #[must_use]
    pub fn ablation_points() -> [Arch; 7] {
        [
            Arch::baseline(),
            Arch::baseline().with_broadcast(),
            Arch::baseline().with_batching(),
            Arch::offload(),
            Arch::offload().with_broadcast(),
            Arch::offload().with_batching(),
            Arch::minos_o(),
        ]
    }

    /// The figure label for this point.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match (self.offload, self.batching, self.broadcast) {
            (false, false, false) => "MINOS-B",
            (false, false, true) => "MINOS-B+bcast",
            (false, true, false) => "MINOS-B+batch",
            (false, true, true) => "MINOS-B+batch+bcast",
            (true, false, false) => "Offl+Coh+WRLock",
            (true, false, true) => "Offl+Coh+WRLock+bcast",
            (true, true, false) => "Offl+Coh+WRLock+batch",
            (true, true, true) => "MINOS-O",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_seven_points() {
        let pts = Arch::ablation_points();
        assert_eq!(pts.len(), 7);
        assert_eq!(pts[0].label(), "MINOS-B");
        assert_eq!(pts[3].label(), "Offl+Coh+WRLock");
        assert_eq!(pts[6].label(), "MINOS-O");
    }

    #[test]
    fn minos_o_has_everything() {
        let o = Arch::minos_o();
        assert!(o.offload && o.batching && o.broadcast);
    }
}
