//! Cost tables mapping engine [`MetaOp`] hints to Table III latencies.

use minos_core::MetaOp;
use minos_core::Side;
use minos_sim::Time;
use minos_types::{Message, MessageKind, SimConfig};

/// Fixed cost of a timestamp comparison or update (register/L1 work; the
/// synchronization latencies of Table III only cover atomic CAS ops).
pub(crate) const TS_OP_NS: Time = 15;

/// Fixed event-dispatch overhead per handled event (queue pop, branch).
pub(crate) const DISPATCH_NS: Time = 30;

/// Cost of one engine meta-hint executed on `side`.
#[must_use]
pub fn meta_cost(cfg: &SimConfig, side: Side, op: MetaOp) -> Time {
    let sync = match side {
        Side::Host => cfg.host_sync_ns,
        Side::Snic => cfg.snic_sync_ns,
    };
    match op {
        MetaOp::ObsoleteCheck | MetaOp::TsUpdate => TS_OP_NS,
        MetaOp::SnatchRdLock | MetaOp::RdUnlock | MetaOp::WrLockAcquire | MetaOp::WrLockRelease => {
            sync
        }
        MetaOp::LlcUpdate { bytes } => cfg.llc_update_ns(bytes),
    }
}

/// NIC-side cost of preparing and sending one message (Table III: 200 ns
/// per INV, 100 ns per ACK; VAL-class and scope messages are header-only
/// like ACKs).
#[must_use]
pub fn send_cost(cfg: &SimConfig, msg: &Message) -> Time {
    match msg.kind() {
        MessageKind::Inv => cfg.send_inv_ns,
        _ => cfg.send_ack_ns,
    }
}

/// One-way network transfer time for `msg`, including the optional
/// datacenter RTT used in the DeathStar experiment.
#[must_use]
pub(crate) fn link_time(cfg: &SimConfig, msg: &Message) -> Time {
    cfg.link_transfer_ns(msg.wire_bytes()) + cfg.datacenter_rtt_ns / 2
}

/// One-way cost of a cross-shard routing hop: a client operation
/// submitted at a node outside its key's replica group travels one
/// header-sized wire transfer to the serving replica (and its completion
/// pays the same hop back). Charged by the sharded simulations on both
/// legs of every routed request.
#[must_use]
pub fn route_hop_ns(cfg: &SimConfig) -> Time {
    cfg.link_transfer_ns(64) + cfg.datacenter_rtt_ns / 2
}

/// Rejoin catch-up time: the donor streams `entries` recovered records
/// totalling `bytes` payload bytes to the rejoining node as one
/// background copy — a summary/delta request-response hop each way, the
/// bulk link transfer, and one dispatch charge per installed record.
/// The simulations keep the rejoiner out of the serving set for this
/// long (the availability dip of a rolling restart).
#[must_use]
pub fn catchup_ns(cfg: &SimConfig, entries: u64, bytes: u64) -> Time {
    2 * route_hop_ns(cfg) + cfg.link_transfer_ns(bytes) + entries * DISPATCH_NS
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use minos_types::{Key, NodeId, Ts};

    fn cfg() -> SimConfig {
        SimConfig::paper_defaults()
    }

    #[test]
    fn lock_ops_use_side_specific_sync_latency() {
        assert_eq!(meta_cost(&cfg(), Side::Host, MetaOp::SnatchRdLock), 42);
        assert_eq!(meta_cost(&cfg(), Side::Snic, MetaOp::SnatchRdLock), 105);
    }

    #[test]
    fn inv_sends_cost_more_than_acks() {
        let inv = Message::Inv {
            key: Key(1),
            ts: Ts::new(NodeId(0), 1),
            value: Bytes::new(),
            scope: None,
        };
        let ack = Message::Ack {
            key: Key(1),
            ts: Ts::new(NodeId(0), 1),
        };
        assert_eq!(send_cost(&cfg(), &inv), 200);
        assert_eq!(send_cost(&cfg(), &ack), 100);
    }

    #[test]
    fn llc_update_scales_with_bytes() {
        let small = meta_cost(&cfg(), Side::Host, MetaOp::LlcUpdate { bytes: 64 });
        let large = meta_cost(&cfg(), Side::Host, MetaOp::LlcUpdate { bytes: 4096 });
        assert!(large > 10 * small);
    }

    #[test]
    fn datacenter_rtt_inflates_link_time() {
        let msg = Message::Ack {
            key: Key(1),
            ts: Ts::new(NodeId(0), 1),
        };
        let base = link_time(&cfg(), &msg);
        let mut far = cfg();
        far.datacenter_rtt_ns = 500_000;
        assert_eq!(link_time(&far, &msg), base + 250_000);
    }
}
