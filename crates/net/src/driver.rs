//! Workload drivers: the closed-loop driver submits YCSB-style or
//! DeathStar operations against a simulated cluster and collects the
//! latency and throughput numbers behind the paper's figures; the
//! open-loop driver ([`run_open_loop`] / [`run_slo_curve`]) replays a
//! Poisson arrival schedule at a fixed offered load so saturation shows
//! up as queueing delay (the latency-vs-offered-load knee) instead of
//! reduced drive.

use crate::arch::Arch;
use crate::bsim::BSim;
use crate::osim::OSim;
use minos_core::obs::{
    analyze, Category, GaugeSet, HistogramSet, MetricsSink, RingRecorder, SharedSink,
};
use minos_core::ReqId;
use minos_sim::{LatencyStats, Time};
use minos_types::{DdpModel, Key, NodeId, PersistencyModel, ScopeId, ShardMap, SimConfig, Value};
use minos_workload::deathstar::{login_batch, App};
use minos_workload::openloop::{OpenLoopSpec, Scenario, SessionOp};
use minos_workload::{Op, RequestStream, WorkloadSpec};
use std::collections::HashMap;

/// What kind of request completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompletionKind {
    /// A client write.
    Write,
    /// A client read.
    Read,
    /// A `[PERSIST]sc`.
    PersistScope,
    /// A multi-key write batch (barrier parent over per-key children;
    /// sharded runs only).
    MultiWrite,
}

/// One completed request, as reported by a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionRec {
    /// Request id.
    pub req: ReqId,
    /// Node that served the request.
    pub node: NodeId,
    /// Completion time.
    pub at: Time,
    /// Request kind.
    pub kind: CompletionKind,
    /// Key operated on (`None` for `[PERSIST]sc`).
    pub key: Option<Key>,
    /// Version written or observed (`Ts::zero()` for `[PERSIST]sc`).
    pub ts: minos_types::Ts,
    /// Whether a write was cut short as obsolete.
    pub obsolete: bool,
    /// Communication time of the write transaction (Figure 4 breakdown;
    /// recorded by [`BSim`] only).
    pub comm_ns: Option<Time>,
}

/// Aggregated results of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Architecture simulated.
    pub arch: Arch,
    /// DDP model simulated.
    pub model: DdpModel,
    /// Write latencies (ns).
    pub write_lat: LatencyStats,
    /// Read latencies (ns).
    pub read_lat: LatencyStats,
    /// Per-write communication time (ns; MINOS-B runs only).
    pub write_comm: LatencyStats,
    /// `[PERSIST]sc` latencies (ns; Scope runs only).
    pub persist_lat: LatencyStats,
    /// Time of the last completion.
    pub makespan: Time,
    /// Writes completed.
    pub writes: u64,
    /// Reads completed.
    pub reads: u64,
}

impl RunResult {
    /// Completed writes per second.
    #[must_use]
    pub fn write_throughput(&self) -> f64 {
        ops_per_sec(self.writes, self.makespan)
    }

    /// Completed reads per second.
    #[must_use]
    pub fn read_throughput(&self) -> f64 {
        ops_per_sec(self.reads, self.makespan)
    }

    /// All completed operations per second.
    #[must_use]
    pub fn total_throughput(&self) -> f64 {
        ops_per_sec(self.writes + self.reads, self.makespan)
    }

    /// Mean computation time per write = mean latency − mean
    /// communication time (Figure 4's decomposition).
    #[must_use]
    pub fn write_comp_mean(&self) -> f64 {
        (self.write_lat.mean() - self.write_comm.mean()).max(0.0)
    }
}

fn ops_per_sec(ops: u64, makespan: Time) -> f64 {
    if makespan == 0 {
        return 0.0;
    }
    ops as f64 * 1e9 / makespan as f64
}

/// Either simulation behind one interface.
enum SimBox {
    B(Box<BSim>),
    O(Box<OSim>),
}

impl SimBox {
    fn new(arch: Arch, cfg: &SimConfig, model: DdpModel) -> Self {
        SimBox::with_placement(arch, cfg, model, None)
    }

    /// Builds the simulation, sharded over `placement` when given.
    fn with_placement(
        arch: Arch,
        cfg: &SimConfig,
        model: DdpModel,
        placement: Option<&ShardMap>,
    ) -> Self {
        match (arch.offload, placement) {
            (true, Some(map)) => SimBox::O(Box::new(OSim::with_placement(
                cfg.clone(),
                arch,
                model,
                map.clone(),
            ))),
            (true, None) => SimBox::O(Box::new(OSim::new(cfg.clone(), arch, model))),
            (false, Some(map)) => SimBox::B(Box::new(BSim::with_placement(
                cfg.clone(),
                arch,
                model,
                map.clone(),
            ))),
            (false, None) => SimBox::B(Box::new(BSim::new(cfg.clone(), arch, model))),
        }
    }

    fn submit_write(
        &mut self,
        at: Time,
        node: NodeId,
        key: Key,
        value: Value,
        scope: Option<ScopeId>,
    ) -> ReqId {
        match self {
            SimBox::B(s) => s.submit_write(at, node, key, value, scope),
            SimBox::O(s) => s.submit_write(at, node, key, value, scope),
        }
    }

    fn submit_read(&mut self, at: Time, node: NodeId, key: Key) -> ReqId {
        match self {
            SimBox::B(s) => s.submit_read(at, node, key),
            SimBox::O(s) => s.submit_read(at, node, key),
        }
    }

    fn submit_write_multi(
        &mut self,
        at: Time,
        node: NodeId,
        writes: Vec<(Key, Value)>,
        scope: Option<ScopeId>,
    ) -> ReqId {
        match self {
            SimBox::B(s) => s.submit_write_multi(at, node, writes, scope),
            SimBox::O(s) => s.submit_write_multi(at, node, writes, scope),
        }
    }

    fn submit_persist_scope(&mut self, at: Time, node: NodeId, scope: ScopeId) -> ReqId {
        match self {
            SimBox::B(s) => s.submit_persist_scope(at, node, scope),
            SimBox::O(s) => s.submit_persist_scope(at, node, scope),
        }
    }

    fn step(&mut self) -> bool {
        match self {
            SimBox::B(s) => s.step(),
            SimBox::O(s) => s.step(),
        }
    }

    fn drain_completions(&mut self) -> Vec<CompletionRec> {
        match self {
            SimBox::B(s) => s.drain_completions(),
            SimBox::O(s) => s.drain_completions(),
        }
    }

    fn attach_tracer(&mut self, sinks: Vec<SharedSink>) {
        match self {
            SimBox::B(s) => s.attach_tracer(sinks),
            SimBox::O(s) => s.attach_tracer(sinks),
        }
    }

    fn gauges(&self) -> &GaugeSet {
        match self {
            SimBox::B(s) => s.gauges(),
            SimBox::O(s) => s.gauges(),
        }
    }

    fn events(&self) -> u64 {
        match self {
            SimBox::B(s) => s.events_processed(),
            SimBox::O(s) => s.events_processed(),
        }
    }
}

/// Writes issued per scope before a `[PERSIST]sc` under `<Lin, Scope>`.
const SCOPE_BATCH: u32 = 16;

struct Client {
    node: NodeId,
    stream: RequestStream,
    remaining: u64,
    /// Scope bookkeeping (Scope model only).
    scope_writes: u32,
    scope_seq: u32,
    id: u32,
    waiting_persist: bool,
}

impl Client {
    fn current_scope(&self) -> ScopeId {
        ScopeId(self.id * 100_000 + self.scope_seq)
    }
}

struct Pending {
    client: usize,
    start: Time,
}

/// Runs the YCSB-style workload `spec` on architecture `arch` under
/// `model`, with one closed-loop client per host core per node (the
/// paper's "5 cores busy per node").
///
/// `spec.requests_per_node` is split across the node's clients; the
/// simulation runs until every client exhausts its budget.
#[must_use]
pub fn run(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &WorkloadSpec,
    seed: u64,
) -> RunResult {
    run_with_clients(arch, cfg, model, spec, seed, cfg.host_cores)
}

/// [`run`] with an explicit number of closed-loop clients per node.
/// Use 1 for latency-focused, contention-free measurements.
#[must_use]
pub fn run_with_clients(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &WorkloadSpec,
    seed: u64,
    clients_per_node: usize,
) -> RunResult {
    let mut sim = SimBox::new(arch, cfg, model);
    run_on(&mut sim, arch, cfg, model, spec, seed, clients_per_node)
}

/// [`run_with_clients`] on a sharded cluster: one simulation hosts every
/// shard group of `map` (which must span `cfg.nodes` nodes), clients
/// submit at their own node, and the routing layer forwards each op to
/// its key's replica group, charging the cross-shard hop both ways.
#[must_use]
pub fn run_sharded(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &WorkloadSpec,
    seed: u64,
    clients_per_node: usize,
    map: &ShardMap,
) -> RunResult {
    let mut sim = SimBox::with_placement(arch, cfg, model, Some(map));
    run_on(&mut sim, arch, cfg, model, spec, seed, clients_per_node)
}

/// MINOS-B with the RDLock-snatching optimization of §III-A disabled —
/// the design-choice ablation (DESIGN.md): a younger write can no longer
/// displace an older one's read lock, so its completion may be delayed
/// behind the older write's.
#[must_use]
pub fn run_b_snatch_ablation(
    cfg: &SimConfig,
    model: DdpModel,
    spec: &WorkloadSpec,
    seed: u64,
    snatch: bool,
) -> RunResult {
    let mut b = BSim::new(cfg.clone(), Arch::baseline(), model);
    if !snatch {
        b.disable_snatching();
    }
    let mut sim = SimBox::B(Box::new(b));
    run_on(
        &mut sim,
        Arch::baseline(),
        cfg,
        model,
        spec,
        seed,
        cfg.host_cores,
    )
}

/// One simulated run with the full second-generation observability stack
/// attached: latency histograms, resource gauges, and the Fig-4
/// critical-path category totals — what the `minos-bench` regression
/// harness records per sweep point.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The classic throughput/latency aggregates.
    pub result: RunResult,
    /// Per model × op latency histograms (p50/p95/p99/p999 source).
    pub hists: HistogramSet,
    /// Resource telemetry sampled during the run.
    pub gauges: GaugeSet,
    /// Total nanoseconds per Fig-4 critical-path category, summed over
    /// every analyzed coordinator-side op
    /// (index = [`Category::index`]).
    pub breakdown: [u64; 4],
    /// Ops the critical-path replay reconstructed (0 when the trace
    /// ring overflowed badly).
    pub analyzed_ops: u64,
}

/// [`run_with_clients`] with tracing attached: returns the run result
/// plus histograms, gauge telemetry, and critical-path totals.
///
/// `trace_capacity` bounds the in-memory trace ring (records beyond it
/// drop oldest-first, shrinking `analyzed_ops`).
#[must_use]
pub fn run_observed(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &WorkloadSpec,
    seed: u64,
    clients_per_node: usize,
    trace_capacity: usize,
) -> ObservedRun {
    run_observed_with_placement(
        arch,
        cfg,
        model,
        spec,
        seed,
        clients_per_node,
        trace_capacity,
        None,
    )
}

/// [`run_observed`] on a sharded cluster (see [`run_sharded`]).
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_observed_sharded(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &WorkloadSpec,
    seed: u64,
    clients_per_node: usize,
    trace_capacity: usize,
    map: &ShardMap,
) -> ObservedRun {
    run_observed_with_placement(
        arch,
        cfg,
        model,
        spec,
        seed,
        clients_per_node,
        trace_capacity,
        Some(map),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_observed_with_placement(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &WorkloadSpec,
    seed: u64,
    clients_per_node: usize,
    trace_capacity: usize,
    placement: Option<&ShardMap>,
) -> ObservedRun {
    use std::sync::{Arc, Mutex};

    let mut sim = SimBox::with_placement(arch, cfg, model, placement);
    let (msink, hists) = MetricsSink::new(model.persistency);
    let ring = Arc::new(Mutex::new(RingRecorder::new(trace_capacity.max(1))));
    let ring_sink: SharedSink = ring.clone();
    sim.attach_tracer(vec![Arc::new(Mutex::new(msink)), ring_sink]);

    let result = run_on(&mut sim, arch, cfg, model, spec, seed, clients_per_node);

    let records = ring.lock().expect("ring poisoned").to_vec();
    let ops = analyze(&records);
    let mut breakdown = [0u64; 4];
    for op in &ops {
        for (i, v) in op.breakdown().iter().enumerate() {
            breakdown[i] += v;
        }
    }
    debug_assert_eq!(Category::ALL.len(), breakdown.len());
    let hists = hists.lock().expect("hists poisoned").clone();
    ObservedRun {
        result,
        hists,
        gauges: sim.gauges().clone(),
        breakdown,
        analyzed_ops: ops.len() as u64,
    }
}

fn run_on(
    sim: &mut SimBox,
    arch_label: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &WorkloadSpec,
    seed: u64,
    clients_per_node: usize,
) -> RunResult {
    let scoped = model.persistency == PersistencyModel::Scope;
    let per_client = (spec.requests_per_node / clients_per_node as u64).max(1);

    let mut clients: Vec<Client> = Vec::new();
    for node in 0..cfg.nodes {
        for c in 0..clients_per_node {
            let id = (node * clients_per_node + c) as u32;
            clients.push(Client {
                node: NodeId(node as u16),
                stream: spec.stream(seed ^ (u64::from(id) << 32) ^ u64::from(id)),
                remaining: per_client,
                scope_writes: 0,
                scope_seq: 0,
                id,
                waiting_persist: false,
            });
        }
    }

    let mut pending: HashMap<ReqId, Pending> = HashMap::new();
    let mut result = RunResult {
        arch: arch_label,
        model,
        write_lat: LatencyStats::new(),
        read_lat: LatencyStats::new(),
        write_comm: LatencyStats::new(),
        persist_lat: LatencyStats::new(),
        makespan: 0,
        writes: 0,
        reads: 0,
    };

    // Prime one operation per client.
    for i in 0..clients.len() {
        submit_next(sim, &mut clients, i, 0, scoped, &mut pending);
    }

    while sim.step() {
        for rec in sim.drain_completions() {
            let Some(p) = pending.remove(&rec.req) else {
                continue;
            };
            let lat = rec.at.saturating_sub(p.start);
            result.makespan = result.makespan.max(rec.at);
            match rec.kind {
                CompletionKind::Write => {
                    result.writes += 1;
                    result.write_lat.record(lat);
                    if let Some(comm) = rec.comm_ns {
                        result.write_comm.record(comm);
                    }
                }
                CompletionKind::Read => {
                    result.reads += 1;
                    result.read_lat.record(lat);
                }
                CompletionKind::PersistScope => {
                    result.persist_lat.record(lat);
                    clients[p.client].waiting_persist = false;
                }
                // The closed-loop driver never issues batches itself, but
                // a barrier parent surfacing here still counts as one
                // completed write operation.
                CompletionKind::MultiWrite => {
                    result.writes += 1;
                    result.write_lat.record(lat);
                }
            }
            submit_next(sim, &mut clients, p.client, rec.at, scoped, &mut pending);
        }
    }

    result
}

/// Submits the client's next operation (or its pending `[PERSIST]sc`).
fn submit_next(
    sim: &mut SimBox,
    clients: &mut [Client],
    idx: usize,
    at: Time,
    scoped: bool,
    pending: &mut HashMap<ReqId, Pending>,
) {
    let cl = &mut clients[idx];
    if cl.waiting_persist {
        return;
    }

    // Scope model: flush the scope every SCOPE_BATCH writes and at the end
    // of the client's run.
    if scoped && (cl.scope_writes >= SCOPE_BATCH || (cl.remaining == 0 && cl.scope_writes > 0)) {
        let sc = cl.current_scope();
        cl.scope_writes = 0;
        cl.scope_seq += 1;
        cl.waiting_persist = true;
        let req = sim.submit_persist_scope(at, cl.node, sc);
        pending.insert(
            req,
            Pending {
                client: idx,
                start: at,
            },
        );
        return;
    }

    if cl.remaining == 0 {
        return;
    }
    cl.remaining -= 1;

    let op = cl.stream.next_op();
    let req = match op {
        Op::Write { key, value } => {
            let scope = scoped.then(|| {
                cl.scope_writes += 1;
                cl.current_scope()
            });
            sim.submit_write(at, cl.node, key, value, scope)
        }
        Op::Read { key } => sim.submit_read(at, cl.node, key),
    };
    pending.insert(
        req,
        Pending {
            client: idx,
            start: at,
        },
    );
}

/// End-to-end results of the DeathStar experiment (Figure 11).
#[derive(Debug, Clone)]
pub struct DeathstarResult {
    /// Architecture simulated.
    pub arch: Arch,
    /// DDP model simulated.
    pub model: DdpModel,
    /// Application.
    pub app: App,
    /// End-to-end latency of each `Login` invocation (ns).
    pub login_lat: LatencyStats,
}

/// Runs `logins` DeathStar `Login` invocations per chain, with one chain
/// per host core per node (the service is under load, as in §VIII-C),
/// on a cluster with a datacenter RTT (paper: 16 nodes, 500 µs).
///
/// Each KV operation of the function pays the client→service round trip
/// (`cfg.datacenter_rtt_ns`) on top of its protocol latency: the
/// microservice call chain crosses the datacenter between operations.
#[must_use]
pub fn run_deathstar(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    app: App,
    logins_per_node: usize,
) -> DeathstarResult {
    // The per-op client hop is charged explicitly below; replication
    // messages inside a write use the plain link latencies.
    let op_rtt = cfg.datacenter_rtt_ns;
    let mut cfg = cfg.clone();
    cfg.datacenter_rtt_ns = 0;
    let cfg = &cfg;
    let mut sim = SimBox::new(arch, cfg, model);
    let scoped = model.persistency == PersistencyModel::Scope;

    // Per-node login chains: each node executes its logins sequentially,
    // each login's ops in program order.
    struct Chain {
        node: NodeId,
        ops: std::vec::IntoIter<Op>,
        login_start: Time,
        logins_left: usize,
        traces: std::vec::IntoIter<Vec<Op>>,
        scope_seq: u32,
        wrote_in_scope: bool,
        flushing: bool,
    }

    // Several login chains per node: the paper's service runs under
    // load, which is where the offload's latency advantage shows (each
    // chain spends most of its time in the client→service RTT, so it
    // takes multiples of the core count to load the node).
    let chains_per_node = cfg.host_cores * 8;
    let mut chains: Vec<Chain> = (0..cfg.nodes * chains_per_node)
        .map(|i| {
            let n = i / chains_per_node;
            let batch = login_batch(app, logins_per_node, 10_000 + i as u64);
            let traces: Vec<Vec<Op>> = batch.into_iter().map(|t| t.ops).collect();
            let mut it = traces.into_iter();
            let first = it.next().unwrap_or_default();
            Chain {
                node: NodeId(n as u16),
                ops: first.into_iter(),
                login_start: 0,
                logins_left: logins_per_node.saturating_sub(1),
                traces: it,
                scope_seq: 0,
                wrote_in_scope: false,
                flushing: false,
            }
        })
        .collect();

    let mut pending: HashMap<ReqId, usize> = HashMap::new();
    let mut login_lat = LatencyStats::new();

    #[allow(clippy::too_many_arguments)]
    fn submit_chain_op(
        sim: &mut SimBox,
        chains: &mut [Chain],
        ci: usize,
        done_at: Time,
        op_rtt: Time,
        scoped: bool,
        pending: &mut HashMap<ReqId, usize>,
        login_lat: &mut LatencyStats,
    ) {
        // Every KV operation of the function pays the client→service
        // round trip before its protocol work starts.
        let at = done_at + op_rtt;
        loop {
            let ch = &mut chains[ci];
            if let Some(op) = ch.ops.next() {
                let req = match op {
                    Op::Write { key, value } => {
                        let scope = scoped.then(|| {
                            ch.wrote_in_scope = true;
                            ScopeId(ci as u32 * 100_000 + ch.scope_seq)
                        });
                        sim.submit_write(at, ch.node, key, value, scope)
                    }
                    Op::Read { key } => sim.submit_read(at, ch.node, key),
                };
                pending.insert(req, ci);
                return;
            }
            // Login finished: under Scope, flush it before it counts.
            if scoped && ch.wrote_in_scope && !ch.flushing {
                ch.flushing = true;
                let sc = ScopeId(ci as u32 * 100_000 + ch.scope_seq);
                let req = sim.submit_persist_scope(at, ch.node, sc);
                pending.insert(req, ci);
                return;
            }
            login_lat.record(done_at.saturating_sub(ch.login_start));
            ch.wrote_in_scope = false;
            ch.flushing = false;
            ch.scope_seq += 1;
            if ch.logins_left == 0 {
                return;
            }
            ch.logins_left -= 1;
            ch.login_start = done_at;
            ch.ops = ch.traces.next().unwrap_or_default().into_iter();
        }
    }

    for ci in 0..chains.len() {
        submit_chain_op(
            &mut sim,
            &mut chains,
            ci,
            0,
            op_rtt,
            scoped,
            &mut pending,
            &mut login_lat,
        );
    }

    while sim.step() {
        for rec in sim.drain_completions() {
            if let Some(ci) = pending.remove(&rec.req) {
                submit_chain_op(
                    &mut sim,
                    &mut chains,
                    ci,
                    rec.at,
                    op_rtt,
                    scoped,
                    &mut pending,
                    &mut login_lat,
                );
            }
        }
    }

    DeathstarResult {
        arch,
        model,
        app,
        login_lat,
    }
}

/// Results of a rolling-restart availability run (MINOS-B under open
/// load while every node in turn crashes and rejoins).
#[derive(Debug, Clone)]
pub struct AvailabilityRun {
    /// DDP model simulated.
    pub model: DdpModel,
    /// Writes submitted over the run.
    pub submitted: u64,
    /// Writes that completed (the rest were lost to a crash — in flight
    /// at the dead coordinator, or addressed to it while down).
    pub completed: u64,
    /// Completed writes per `window_ns` bucket of simulated time, from
    /// t = 0 to the last completion.
    pub windows: Vec<u64>,
    /// The view epoch after the full rolling restart
    /// (1 + 2 view changes per node: each crash and each rejoin).
    pub final_epoch: u64,
    /// Mean write latency over the completions (ns).
    pub write_mean_ns: f64,
}

impl AvailabilityRun {
    /// Fraction of submitted writes that completed.
    #[must_use]
    pub fn availability(&self) -> f64 {
        if self.submitted == 0 {
            return 1.0;
        }
        self.completed as f64 / self.submitted as f64
    }

    /// Depth of the worst throughput dip: min window / max window over
    /// the interior windows (first and last are partial). 1.0 = flat.
    #[must_use]
    pub fn dip_ratio(&self) -> f64 {
        let interior = if self.windows.len() > 2 {
            &self.windows[1..self.windows.len() - 1]
        } else {
            &self.windows[..]
        };
        let max = interior.iter().copied().max().unwrap_or(0);
        let min = interior.iter().copied().min().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        min as f64 / max as f64
    }
}

/// Runs an open-loop write workload against a MINOS-B simulation while
/// every node in turn crashes and rejoins (a rolling restart): node `k`
/// goes down at `(k+1) · span/(n+1)` and begins its rejoin `outage_ns`
/// later, where `span` is the submission horizon. Clients keep
/// submitting at their own node throughout — operations addressed to a
/// down node are lost, which is exactly the availability dip this
/// measures. Writes spread over `keys` keys round-robin.
#[must_use]
pub fn run_rolling_restart(
    cfg: &SimConfig,
    model: DdpModel,
    writes_per_node: u64,
    period_ns: Time,
    outage_ns: Time,
    keys: u64,
    window_ns: Time,
) -> AvailabilityRun {
    assert!(window_ns > 0 && period_ns > 0 && keys > 0);
    let n = cfg.nodes;
    let mut sim = BSim::new(cfg.clone(), Arch::baseline(), model);

    // Open-loop submission plan: every node issues one write per period.
    let mut submitted = 0u64;
    let mut starts: HashMap<ReqId, Time> = HashMap::new();
    for i in 0..writes_per_node {
        let at = i * period_ns;
        for node in 0..n {
            let key = Key((submitted) % keys);
            let req = sim.submit_write(
                at,
                NodeId(node as u16),
                key,
                format!("w{submitted}").into(),
                None,
            );
            starts.insert(req, at);
            submitted += 1;
        }
    }

    // The rolling restart: one node at a time, evenly spread over the
    // submission horizon.
    let span = writes_per_node * period_ns;
    let slot = span / (n as u64 + 1);
    for k in 0..n {
        let down_at = (k as u64 + 1) * slot;
        let node = NodeId(k as u16);
        let donor = NodeId(((k + 1) % n) as u16);
        sim.schedule_crash(down_at, node);
        sim.schedule_rejoin(down_at + outage_ns, node, donor);
    }

    sim.run_to_idle();

    let mut windows: Vec<u64> = Vec::new();
    let mut completed = 0u64;
    let mut lat_sum = 0u64;
    for rec in sim.drain_completions() {
        if rec.kind != CompletionKind::Write {
            continue;
        }
        completed += 1;
        if let Some(start) = starts.remove(&rec.req) {
            lat_sum += rec.at.saturating_sub(start);
        }
        let w = (rec.at / window_ns) as usize;
        if windows.len() <= w {
            windows.resize(w + 1, 0);
        }
        windows[w] += 1;
    }

    AvailabilityRun {
        model,
        submitted,
        completed,
        windows,
        final_epoch: sim.view_epoch(),
        write_mean_ns: if completed == 0 {
            0.0
        } else {
            lat_sum as f64 / completed as f64
        },
    }
}

/// Aggregated results of one open-loop run at a fixed offered load.
///
/// All latencies use *late-arrival accounting*: measured from the
/// operation's scheduled Poisson arrival, not from when the system got
/// around to serving it — so past saturation, queueing delay piles into
/// the percentiles instead of silently throttling the drive.
#[derive(Debug, Clone)]
pub struct OpenLoopResult {
    /// Architecture simulated.
    pub arch: Arch,
    /// DDP model simulated.
    pub model: DdpModel,
    /// The scenario replayed.
    pub scenario: Scenario,
    /// Offered load the arrival schedule was generated at (ops/s).
    pub offered_load: f64,
    /// Session operations in the schedule.
    pub submitted: u64,
    /// Session operations that fully completed (every scan leg, the
    /// dependent RMW write, the multi-key barrier).
    pub completed: u64,
    /// End-to-end latency of every completed session op (ns, from
    /// scheduled arrival).
    pub lat: LatencyStats,
    /// Latencies of the writing ops (write / rmw / multi-write).
    pub write_lat: LatencyStats,
    /// Latencies of the read-only ops (read / scan).
    pub read_lat: LatencyStats,
    /// Time of the last completion.
    pub makespan: Time,
    /// Time of the last scheduled arrival.
    pub horizon: Time,
}

impl OpenLoopResult {
    /// Completed session operations per second of simulated time.
    #[must_use]
    pub fn achieved_throughput(&self) -> f64 {
        ops_per_sec(self.completed, self.makespan)
    }

    /// `achieved / offered` — 1.0 below saturation, < 1.0 once the
    /// makespan stretches past the arrival horizon.
    #[must_use]
    pub fn drive_ratio(&self) -> f64 {
        if self.offered_load == 0.0 {
            return 1.0;
        }
        self.achieved_throughput() / self.offered_load
    }
}

/// Per-arrival bookkeeping for the open-loop driver.
struct ArrState {
    at: Time,
    /// Outstanding legs (scan fan-out; 1 for everything else).
    legs: u32,
    /// `Some(payload)` while an RMW's read leg is outstanding; taken
    /// when the dependent write is submitted.
    rmw_value: Option<Value>,
    key: Key,
    node: NodeId,
    session: u32,
    writes: bool,
}

/// Replays the open-loop schedule of `spec` (seeded with `seed`)
/// against a simulated cluster: every arrival is submitted at its
/// scheduled nanosecond regardless of how far behind the system is.
///
/// * RMW arrivals submit their read at the arrival and chain the
///   dependent write when it completes; the op finishes at the write.
/// * Scans fan out all legs at the arrival and finish at the last leg.
/// * Multi-key writes use the barrier parent ([`CompletionKind::MultiWrite`]).
/// * [`Scenario::Geo`] raises the datacenter RTT to
///   [`Scenario::wan_rtt_ns`] and splits the cluster into two "regions"
///   (a 2-group [`ShardMap`]), so cross-region ops pay the WAN hop both
///   ways via `timing::route_hop_ns`.
/// * Under `<Lin, Scope>` each session writes into its own scope; the
///   curve measures write visibility, not flush cost (no `[PERSIST]sc`
///   is issued — flush-inclusive numbers come from the closed-loop
///   driver).
///
/// Virtual sessions map to coordinator nodes round-robin
/// (`session % nodes`).
#[must_use]
pub fn run_open_loop(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &OpenLoopSpec,
    seed: u64,
) -> OpenLoopResult {
    let mut cfg = cfg.clone();
    let placement = spec.scenario.wan_rtt_ns().map(|rtt| {
        cfg.datacenter_rtt_ns = cfg.datacenter_rtt_ns.max(rtt);
        let replicas = u16::try_from((cfg.nodes / 2).max(1)).expect("node count fits u16");
        ShardMap::uniform(2, cfg.nodes, replicas)
    });
    let mut sim = SimBox::with_placement(arch, &cfg, model, placement.as_ref());
    let schedule = spec.schedule(seed);
    open_loop_replay(&mut sim, arch, model, spec, schedule, cfg.nodes)
}

/// The open-loop replay core: submits `schedule` against a prepared
/// simulation and runs it dry. Shared by [`run_open_loop`] and the
/// [`ParMode::Single`] arm of [`run_open_loop_sharded`].
fn open_loop_replay(
    sim: &mut SimBox,
    arch: Arch,
    model: DdpModel,
    spec: &OpenLoopSpec,
    schedule: Vec<minos_workload::openloop::Arrival>,
    nodes: usize,
) -> OpenLoopResult {
    let scoped = model.persistency == PersistencyModel::Scope;

    let mut result = OpenLoopResult {
        arch,
        model,
        scenario: spec.scenario,
        offered_load: spec.offered_load,
        submitted: schedule.len() as u64,
        completed: 0,
        lat: LatencyStats::new(),
        write_lat: LatencyStats::new(),
        read_lat: LatencyStats::new(),
        makespan: 0,
        horizon: schedule.last().map_or(0, |a| a.at_ns),
    };

    // Submit the entire schedule upfront: the DES admits each op at its
    // scheduled time, so a backlogged coordinator queues arrivals
    // instead of deferring them.
    let mut arrs: Vec<ArrState> = Vec::with_capacity(schedule.len());
    let mut pending: HashMap<ReqId, usize> = HashMap::new();
    for arrival in schedule {
        let node = NodeId((arrival.session as usize % nodes) as u16);
        let scope = scoped.then_some(ScopeId(arrival.session));
        let at = arrival.at_ns;
        let idx = arrs.len();
        let (state, reqs) = match arrival.op {
            SessionOp::Write { key, value } => {
                let req = sim.submit_write(at, node, key, value, scope);
                (
                    arr_state(at, 1, None, key, node, arrival.session, true),
                    vec![req],
                )
            }
            SessionOp::Read { key } => {
                let req = sim.submit_read(at, node, key);
                (
                    arr_state(at, 1, None, key, node, arrival.session, false),
                    vec![req],
                )
            }
            SessionOp::Rmw { key, value } => {
                let req = sim.submit_read(at, node, key);
                (
                    arr_state(at, 1, Some(value), key, node, arrival.session, true),
                    vec![req],
                )
            }
            SessionOp::Scan { start, len } => {
                let reqs: Vec<ReqId> = (0..u64::from(len))
                    .map(|i| sim.submit_read(at, node, Key(start.0 + i)))
                    .collect();
                (
                    arr_state(at, len, None, start, node, arrival.session, false),
                    reqs,
                )
            }
            SessionOp::MultiWrite { keys, value } => {
                let first = keys[0];
                let writes: Vec<(Key, Value)> =
                    keys.into_iter().map(|k| (k, value.clone())).collect();
                let req = sim.submit_write_multi(at, node, writes, scope);
                (
                    arr_state(at, 1, None, first, node, arrival.session, true),
                    vec![req],
                )
            }
        };
        arrs.push(state);
        for req in reqs {
            pending.insert(req, idx);
        }
    }

    while sim.step() {
        for rec in sim.drain_completions() {
            let Some(&idx) = pending.get(&rec.req) else {
                continue; // barrier children and other internal reqs
            };
            pending.remove(&rec.req);
            let st = &mut arrs[idx];
            if let Some(value) = st.rmw_value.take() {
                // The RMW's read came back: chain the dependent write.
                let scope = scoped.then_some(ScopeId(st.session));
                let req = sim.submit_write(rec.at, st.node, st.key, value, scope);
                pending.insert(req, idx);
                continue;
            }
            st.legs -= 1;
            if st.legs > 0 {
                continue;
            }
            let lat = rec.at.saturating_sub(st.at);
            result.completed += 1;
            result.makespan = result.makespan.max(rec.at);
            result.lat.record(lat);
            if st.writes {
                result.write_lat.record(lat);
            } else {
                result.read_lat.record(lat);
            }
        }
    }

    result
}

#[allow(clippy::fn_params_excessive_bools)]
fn arr_state(
    at: Time,
    legs: u32,
    rmw_value: Option<Value>,
    key: Key,
    node: NodeId,
    session: u32,
    writes: bool,
) -> ArrState {
    ArrState {
        at,
        legs,
        rmw_value,
        key,
        node,
        session,
        writes,
    }
}

/// How [`run_open_loop_sharded`] executes a sharded open-loop replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParMode {
    /// One full-cluster simulation hosts every shard group — the
    /// reference execution (the shape of [`run_open_loop`], with the
    /// caller's placement map).
    Single,
    /// One full-cluster simulation **per shard group**, replayed one
    /// group at a time, each fed only the arrival legs its group
    /// serves. Disjoint groups interact solely through client routing
    /// hops (`timing::route_hop_ns`), which are pure time offsets on
    /// otherwise-untouched origin nodes, so this produces the same
    /// per-arrival completion times as [`ParMode::Single`].
    Sequential,
    /// [`ParMode::Sequential`]'s per-group simulations on one thread
    /// per group. Byte-identical output to `Sequential` by
    /// construction: the same per-group code path runs on every group
    /// and results merge in (group, arrival) order either way.
    Parallel,
}

/// Result of a sharded open-loop replay, plus the number of DES events
/// it took — the denominator of the `simspeed/*` bench cells.
#[derive(Debug, Clone)]
pub struct ShardedOpenLoop {
    /// The open-loop aggregates.
    pub result: OpenLoopResult,
    /// Events processed, summed over every simulation instance. The
    /// same arrival schedule costs the same event count in every
    /// [`ParMode`]: each scheduled event runs in exactly one instance.
    pub events: u64,
}

/// One primitive per-group leg of a decomposed open-loop arrival.
enum SubOp {
    Write {
        key: Key,
        value: Value,
    },
    Read {
        key: Key,
    },
    /// A read that chains a dependent write of `value` at its
    /// completion (both on `key`, hence both inside one group).
    Rmw {
        key: Key,
        value: Value,
    },
}

/// A leg routed to one shard group, tagged with its arrival index.
struct SubArrival {
    idx: u32,
    at: Time,
    node: NodeId,
    session: u32,
    sub: SubOp,
}

/// Decomposes the schedule into per-group leg lists (index = shard
/// group), preserving arrival order within each group; also returns how
/// many distinct groups each arrival touches (its merge fan-in).
///
/// The decomposition mirrors what the in-sim [`ShardRouter`] barrier
/// machinery does on a single instance: scans split into one read per
/// key, multi-key writes into one plain child write per key (the
/// barrier parent completes at the latest child, i.e. the max over leg
/// completion times — exactly what the merge computes), and RMWs chain
/// inside their key's group.
fn partition_schedule(
    schedule: Vec<minos_workload::openloop::Arrival>,
    map: &ShardMap,
    nodes: usize,
) -> (Vec<Vec<SubArrival>>, Vec<u32>) {
    let groups = map.n_shards() as usize;
    let mut subs: Vec<Vec<SubArrival>> = Vec::new();
    subs.resize_with(groups, Vec::new);
    let mut involved: Vec<u32> = Vec::with_capacity(schedule.len());
    let mut touched: Vec<u32> = Vec::new();
    for (i, arrival) in schedule.into_iter().enumerate() {
        let idx = i as u32;
        let at = arrival.at_ns;
        let session = arrival.session;
        let node = NodeId((session as usize % nodes) as u16);
        touched.clear();
        {
            let mut leg = |key: Key, sub: SubOp| {
                let g = map.shard_of(key).0;
                if !touched.contains(&g) {
                    touched.push(g);
                }
                subs[g as usize].push(SubArrival {
                    idx,
                    at,
                    node,
                    session,
                    sub,
                });
            };
            match arrival.op {
                SessionOp::Write { key, value } => leg(key, SubOp::Write { key, value }),
                SessionOp::Read { key } => leg(key, SubOp::Read { key }),
                SessionOp::Rmw { key, value } => leg(key, SubOp::Rmw { key, value }),
                SessionOp::Scan { start, len } => {
                    for j in 0..u64::from(len) {
                        let key = Key(start.0 + j);
                        leg(key, SubOp::Read { key });
                    }
                }
                SessionOp::MultiWrite { keys, value } => {
                    for key in keys {
                        let value = value.clone();
                        leg(key, SubOp::Write { key, value });
                    }
                }
            }
        }
        involved.push(touched.len() as u32);
    }
    (subs, involved)
}

/// What one per-group replay reports back for the merge.
struct GroupOut {
    /// `(arrival idx, completion time)` — emitted once every leg of
    /// that arrival *inside this group* completed, at the latest leg.
    done: Vec<(u32, Time)>,
    /// Events this instance processed.
    events: u64,
}

/// Replays one group's legs on its own full-cluster simulation.
fn run_group(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    map: &ShardMap,
    subs: Vec<SubArrival>,
    sinks: Option<Vec<SharedSink>>,
) -> GroupOut {
    let mut sim = SimBox::with_placement(arch, cfg, model, Some(map));
    if let Some(sinks) = sinks {
        sim.attach_tracer(sinks);
    }
    let scoped = model.persistency == PersistencyModel::Scope;
    // Arrival idx → (legs outstanding here, latest leg completion).
    let mut arrs: HashMap<u32, (u32, Time)> = HashMap::new();
    let mut pending: HashMap<ReqId, u32> = HashMap::new();
    // Read req → the dependent RMW write to chain at its completion.
    let mut rmw: HashMap<ReqId, (Key, Value, NodeId, u32)> = HashMap::new();
    for s in subs {
        let scope = scoped.then_some(ScopeId(s.session));
        let req = match s.sub {
            SubOp::Write { key, value } => sim.submit_write(s.at, s.node, key, value, scope),
            SubOp::Read { key } => sim.submit_read(s.at, s.node, key),
            SubOp::Rmw { key, value } => {
                let req = sim.submit_read(s.at, s.node, key);
                rmw.insert(req, (key, value, s.node, s.session));
                req
            }
        };
        arrs.entry(s.idx).or_insert((0, 0)).0 += 1;
        pending.insert(req, s.idx);
    }

    let mut done: Vec<(u32, Time)> = Vec::new();
    while sim.step() {
        for rec in sim.drain_completions() {
            let Some(idx) = pending.remove(&rec.req) else {
                continue;
            };
            if let Some((key, value, node, session)) = rmw.remove(&rec.req) {
                let scope = scoped.then_some(ScopeId(session));
                let req = sim.submit_write(rec.at, node, key, value, scope);
                pending.insert(req, idx);
                continue;
            }
            let e = arrs.get_mut(&idx).expect("leg registered at submit");
            e.0 -= 1;
            e.1 = e.1.max(rec.at);
            if e.0 == 0 {
                done.push((idx, e.1));
            }
        }
    }
    GroupOut {
        done,
        events: sim.events(),
    }
}

/// Replays the open-loop schedule of `spec` on the sharded cluster
/// placed by `map`, in the given [`ParMode`].
///
/// [`ParMode::Single`] runs everything on one simulation (the reference
/// physics). The partitioned modes run one full-cluster simulation per
/// shard group — sound because a disjoint `map` makes groups share no
/// nodes, and a routed client op only touches its origin as a pure
/// `route_hop_ns` time offset — and merge per-arrival completion times
/// deterministically (fan-out ops complete at their latest leg, exactly
/// the in-sim barrier rule). [`Scenario::Geo`] raises the datacenter
/// RTT like [`run_open_loop`], but keeps the caller's map.
///
/// # Panics
///
/// Panics when `map` does not span `cfg.nodes`, or a partitioned mode
/// is asked for a non-disjoint map.
#[must_use]
pub fn run_open_loop_sharded(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &OpenLoopSpec,
    seed: u64,
    map: &ShardMap,
    mode: ParMode,
) -> ShardedOpenLoop {
    run_open_loop_sharded_traced(arch, cfg, model, spec, seed, map, mode, None)
}

/// [`run_open_loop_sharded`] with observability attached: `sinks_for`
/// is called once per simulation instance (the shard-group id in
/// partitioned modes, 0 in [`ParMode::Single`]) and its sinks attach to
/// that instance's tracer — per-group histories for the conformance
/// oracles.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_open_loop_sharded_traced(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &OpenLoopSpec,
    seed: u64,
    map: &ShardMap,
    mode: ParMode,
    sinks_for: Option<&(dyn Fn(u32) -> Vec<SharedSink> + Sync)>,
) -> ShardedOpenLoop {
    assert_eq!(map.n_nodes(), cfg.nodes, "placement/config node mismatch");
    let mut cfg = cfg.clone();
    if let Some(rtt) = spec.scenario.wan_rtt_ns() {
        cfg.datacenter_rtt_ns = cfg.datacenter_rtt_ns.max(rtt);
    }
    let schedule = spec.schedule(seed);

    if mode == ParMode::Single {
        let mut sim = SimBox::with_placement(arch, &cfg, model, Some(map));
        if let Some(f) = sinks_for {
            sim.attach_tracer(f(0));
        }
        let result = open_loop_replay(&mut sim, arch, model, spec, schedule, cfg.nodes);
        return ShardedOpenLoop {
            result,
            events: sim.events(),
        };
    }

    assert!(
        map.is_disjoint(),
        "per-shard-group replay needs disjoint replica groups"
    );
    let submitted = schedule.len() as u64;
    let horizon = schedule.last().map_or(0, |a| a.at_ns);
    // Per-arrival metadata, kept before the schedule is consumed.
    let meta: Vec<(Time, bool)> = schedule.iter().map(|a| (a.at_ns, a.op.writes())).collect();
    let (subs, involved) = partition_schedule(schedule, map, cfg.nodes);

    let group_outs: Vec<GroupOut> = match mode {
        ParMode::Single => unreachable!("handled above"),
        ParMode::Sequential => subs
            .into_iter()
            .enumerate()
            .map(|(g, s)| run_group(arch, &cfg, model, map, s, sinks_for.map(|f| f(g as u32))))
            .collect(),
        ParMode::Parallel => {
            let cfg = &cfg;
            std::thread::scope(|scope| {
                let handles: Vec<_> = subs
                    .into_iter()
                    .enumerate()
                    .map(|(g, s)| {
                        scope.spawn(move || {
                            run_group(arch, cfg, model, map, s, sinks_for.map(|f| f(g as u32)))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("group replay thread"))
                    .collect()
            })
        }
    };

    // Deterministic merge: group order, then arrival order.
    let mut remaining = involved;
    let mut done_at: Vec<Time> = vec![0; remaining.len()];
    let mut events = 0u64;
    for out in group_outs {
        events += out.events;
        for (idx, at) in out.done {
            let i = idx as usize;
            remaining[i] -= 1;
            done_at[i] = done_at[i].max(at);
        }
    }

    let mut result = OpenLoopResult {
        arch,
        model,
        scenario: spec.scenario,
        offered_load: spec.offered_load,
        submitted,
        completed: 0,
        lat: LatencyStats::new(),
        write_lat: LatencyStats::new(),
        read_lat: LatencyStats::new(),
        makespan: 0,
        horizon,
    };
    for (i, &(at, writes)) in meta.iter().enumerate() {
        if remaining[i] != 0 {
            continue; // a leg was lost (possible only under view changes)
        }
        let lat = done_at[i].saturating_sub(at);
        result.completed += 1;
        result.makespan = result.makespan.max(done_at[i]);
        result.lat.record(lat);
        if writes {
            result.write_lat.record(lat);
        } else {
            result.read_lat.record(lat);
        }
    }
    ShardedOpenLoop { result, events }
}

/// Sweeps [`run_open_loop`] over `loads` (ops/s, ascending by
/// convention) with the same scenario, seed, and op budget — one
/// latency-vs-offered-load curve. The p99 of the returned points bends
/// sharply upward past the architecture's capacity: the saturation knee.
#[must_use]
pub fn run_slo_curve(
    arch: Arch,
    cfg: &SimConfig,
    model: DdpModel,
    spec: &OpenLoopSpec,
    seed: u64,
    loads: &[f64],
) -> Vec<OpenLoopResult> {
    loads
        .iter()
        .map(|&load| {
            let spec = spec.clone().with_offered_load(load);
            run_open_loop(arch, cfg, model, &spec, seed)
        })
        .collect()
}
