//! Scheduled crash/rejoin on the DES kernels: epoch progression, lost
//! frames to dead nodes, catch-up cost, and the rolling-restart
//! availability experiment.

use minos_net::{driver, Arch, BSim, OSim};
use minos_types::{DdpModel, Key, NodeId, PersistencyModel, SimConfig};

fn synch() -> DdpModel {
    DdpModel::lin(PersistencyModel::Synchronous)
}

#[test]
fn bsim_crash_and_rejoin_advance_the_epoch_and_catch_up() {
    let mut sim = BSim::new(SimConfig::paper_defaults(), Arch::baseline(), synch());
    assert_eq!(sim.view_epoch(), 1);

    // A write completes before the crash.
    sim.submit_write(0, NodeId(0), Key(1), "pre".into(), None);
    // Node 2 dies at 1 ms, then writes continue against the survivors.
    sim.schedule_crash(1_000_000, NodeId(2));
    sim.submit_write(2_000_000, NodeId(0), Key(1), "during".into(), None);
    // Rejoin begins at 4 ms with node 0 as donor.
    sim.schedule_rejoin(4_000_000, NodeId(2), NodeId(0));
    sim.run_to_idle();

    assert_eq!(sim.view_epoch(), 3, "crash + completed rejoin = 2 bumps");
    assert!(sim.membership().is_serving(NodeId(2)));
    assert_eq!(
        sim.engine(NodeId(2)).record_value(Key(1)).unwrap(),
        "during",
        "donor catch-up restores the version written while down"
    );
    let writes = sim
        .drain_completions()
        .iter()
        .filter(|r| r.kind == minos_net::CompletionKind::Write)
        .count();
    assert_eq!(writes, 2, "both writes completed despite the outage");
}

#[test]
fn bsim_writes_during_outage_complete_on_the_shrunken_quorum() {
    let mut sim = BSim::new(SimConfig::paper_defaults(), Arch::baseline(), synch());
    sim.schedule_crash(0, NodeId(1));
    // Submitted after the crash fires: the Synchronous quorum must not
    // wait for the dead node's acknowledgment.
    sim.submit_write(10_000, NodeId(0), Key(5), "v".into(), None);
    sim.run_to_idle();
    let comps = sim.drain_completions();
    assert_eq!(comps.len(), 1, "write must complete against survivors");
    assert_eq!(sim.engine(NodeId(2)).record_value(Key(5)).unwrap(), "v");
}

#[test]
fn bsim_rejoin_pays_the_catchup_window() {
    // With a large record set, the rejoiner must re-enter strictly later
    // than the rejoin start: catch-up transfer time is charged.
    let mut sim = BSim::new(SimConfig::paper_defaults(), Arch::baseline(), synch());
    for k in 0..64u64 {
        sim.submit_write(0, NodeId(0), Key(k), vec![0u8; 1024].into(), None);
    }
    sim.schedule_crash(10_000_000, NodeId(2));
    sim.schedule_rejoin(20_000_000, NodeId(2), NodeId(0));
    sim.run_to_idle();
    assert!(sim.membership().is_serving(NodeId(2)));
    // The lease was granted at complete_rejoin time = 20 ms + catch-up.
    let granted = sim.membership().lease_expiry(NodeId(2)).unwrap() - sim.membership().lease_ns();
    assert!(
        granted > 20_000_000,
        "re-admittance at {granted} must be after rejoin start plus catch-up"
    );
}

#[test]
fn osim_quiesced_crash_rejoin_restores_state() {
    let mut sim = OSim::new(SimConfig::paper_defaults(), Arch::minos_o(), synch());
    sim.submit_write(0, NodeId(0), Key(1), "pre".into(), None);
    sim.run_to_idle();

    sim.schedule_crash(sim.now() + 1_000, NodeId(2));
    sim.schedule_rejoin(sim.now() + 2_000, NodeId(2), NodeId(0));
    sim.run_to_idle();

    assert_eq!(sim.view_epoch(), 3);
    assert!(sim.membership().is_serving(NodeId(2)));
    assert_eq!(
        sim.engine(NodeId(2)).record_value(Key(1)).unwrap(),
        "pre",
        "donor copy restores the record"
    );

    // Full-group quorums work again after the readmit.
    sim.submit_write(sim.now() + 1, NodeId(1), Key(1), "post".into(), None);
    sim.run_to_idle();
    let writes = sim
        .drain_completions()
        .iter()
        .filter(|r| r.kind == minos_net::CompletionKind::Write)
        .count();
    assert_eq!(writes, 2);
}

#[test]
fn rolling_restart_measures_an_availability_dip() {
    let cfg = SimConfig::paper_defaults();
    let run = driver::run_rolling_restart(
        &cfg,
        synch(),
        400,     // writes per node
        20_000,  // one write per node per 20 µs
        200_000, // 200 µs outage per node
        64,      // key-space
        500_000, // 0.5 ms windows
    );
    assert_eq!(
        run.final_epoch,
        1 + 2 * cfg.nodes as u64,
        "every node burned one crash and one rejoin epoch"
    );
    assert!(run.submitted > 0);
    assert!(
        run.completed < run.submitted,
        "ops addressed to down nodes are lost: {}/{}",
        run.completed,
        run.submitted
    );
    assert!(
        run.availability() > 0.5,
        "most ops must survive a one-at-a-time rolling restart, got {}",
        run.availability()
    );
    assert!(run.dip_ratio() < 1.0, "the restart must dent throughput");
}
