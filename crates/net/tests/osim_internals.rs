//! Focused tests of the MINOS-O simulation internals: coherence charging,
//! FIFO gating of acknowledgments, batching/broadcast cost structure.

use minos_net::{driver, Arch, OSim};
use minos_types::{DdpModel, Key, NodeId, PersistencyModel, SimConfig};
use minos_workload::WorkloadSpec;

fn synch() -> DdpModel {
    DdpModel::lin(PersistencyModel::Synchronous)
}

#[test]
fn synch_ack_waits_for_dfifo_write() {
    // A Synch follower may ACK only once the update is durable — i.e.
    // after the dFIFO write (1295 ns/KB). Halving the payload must
    // shorten the single-write latency by roughly the dFIFO+vFIFO delta.
    let lat = |bytes: usize| {
        let mut sim = OSim::new(SimConfig::paper_defaults(), Arch::minos_o(), synch());
        sim.submit_write(0, NodeId(0), Key(1), vec![0u8; bytes].into(), None);
        sim.run_to_idle();
        sim.drain_completions()[0].at
    };
    let full = lat(1024);
    let half = lat(512);
    assert!(
        full > half + 500,
        "payload size must move the durable gate: {full} vs {half}"
    );
}

#[test]
fn coherence_snoop_cost_is_charged() {
    // Raising the snoop latency must slow MINOS-O writes (the coherent
    // metadata line migrates host↔SNIC several times per write).
    let spec = WorkloadSpec::ycsb_default()
        .with_records(256)
        .with_requests_per_node(300);
    let lat = |snoop: u64| {
        let mut cfg = SimConfig::paper_defaults();
        cfg.coherence_snoop_ns = snoop;
        driver::run(Arch::minos_o(), &cfg, synch(), &spec, 3)
            .write_lat
            .mean()
    };
    let cheap = lat(0);
    let pricey = lat(2_000);
    assert!(
        pricey > cheap + 1_000.0,
        "snoop cost not charged: {cheap} vs {pricey}"
    );
}

#[test]
fn snic_core_count_matters_under_load() {
    let spec = WorkloadSpec::ycsb_default()
        .with_records(256)
        .with_write_fraction(1.0)
        .with_requests_per_node(400);
    let lat = |cores: usize| {
        let mut cfg = SimConfig::paper_defaults();
        cfg.snic_cores = cores;
        driver::run(Arch::minos_o(), &cfg, synch(), &spec, 3)
            .write_lat
            .mean()
    };
    let one = lat(1);
    let eight = lat(8);
    assert!(
        one > eight,
        "a single SNIC core must be slower: 1core={one:.0} 8core={eight:.0}"
    );
}

#[test]
fn o_models_have_similar_latency() {
    // Fig 9's "MINOS-O is much less sensitive to the persistency model":
    // across all five models the mean write latency spread stays small.
    let spec = WorkloadSpec::ycsb_default()
        .with_records(512)
        .with_requests_per_node(300);
    let cfg = SimConfig::paper_defaults();
    let lats: Vec<f64> = DdpModel::all_lin()
        .into_iter()
        .map(|m| {
            driver::run(Arch::minos_o(), &cfg, m, &spec, 3)
                .write_lat
                .mean()
        })
        .collect();
    let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = lats.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 1.6, "O model spread too wide: {lats:?}");
}

#[test]
fn obsolete_writes_complete_in_o_sim() {
    // Same-key bursts from every node: many writes become obsolete;
    // every one must still complete (the handleObsolete paths under
    // simulated timing).
    let spec = WorkloadSpec::ycsb_default()
        .with_records(2)
        .with_write_fraction(1.0)
        .with_requests_per_node(200);
    let cfg = SimConfig::paper_defaults();
    let r = driver::run(Arch::minos_o(), &cfg, synch(), &spec, 3);
    // 5 nodes × 5 clients × (200/5) requests, all writes.
    assert_eq!(r.writes, 1000, "every write must complete");
}

#[test]
fn batched_descriptor_is_one_pcie_transfer() {
    // With batching, write latency must not grow with the node count as
    // fast as without it (the PCIe leg is constant).
    let spec = WorkloadSpec::ycsb_default()
        .with_records(512)
        .with_write_fraction(1.0)
        .with_requests_per_node(200);
    let lat = |nodes: usize, batching: bool| {
        let cfg = SimConfig::paper_defaults().with_nodes(nodes);
        let arch = if batching {
            Arch::minos_o()
        } else {
            Arch::offload().with_broadcast()
        };
        driver::run(arch, &cfg, synch(), &spec, 3).write_lat.mean()
    };
    let growth_batched = lat(10, true) / lat(2, true);
    let growth_unbatched = lat(10, false) / lat(2, false);
    assert!(
        growth_batched <= growth_unbatched * 1.05,
        "batching must not scale worse: batched x{growth_batched:.2} vs x{growth_unbatched:.2}"
    );
}
