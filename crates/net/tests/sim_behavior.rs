//! End-to-end behavioral tests of the simulated machines: the headline
//! trends of the paper's evaluation must hold on small configurations.

use minos_net::{driver, Arch, BSim, OSim};
use minos_types::{DdpModel, Key, NodeId, PersistencyModel, SimConfig};
use minos_workload::{KeyDist, WorkloadSpec};

fn small_spec() -> WorkloadSpec {
    WorkloadSpec::ycsb_default()
        .with_records(64)
        .with_requests_per_node(200)
}

fn synch() -> DdpModel {
    DdpModel::lin(PersistencyModel::Synchronous)
}

#[test]
fn writes_complete_and_replicate_in_bsim() {
    let cfg = SimConfig::paper_defaults();
    let mut sim = BSim::new(cfg, Arch::baseline(), synch());
    let r = sim.submit_write(0, NodeId(0), Key(1), "payload".into(), None);
    sim.run_to_idle();
    let recs = sim.drain_completions();
    assert!(recs.iter().any(|c| c.req == r));
    for n in 0..5 {
        assert_eq!(
            sim.engine(NodeId(n)).record_value(Key(1)).unwrap(),
            "payload"
        );
    }
}

#[test]
fn writes_complete_and_replicate_in_osim() {
    let cfg = SimConfig::paper_defaults();
    let mut sim = OSim::new(cfg, Arch::minos_o(), synch());
    let r = sim.submit_write(0, NodeId(0), Key(1), "payload".into(), None);
    sim.run_to_idle();
    let recs = sim.drain_completions();
    assert!(recs.iter().any(|c| c.req == r));
    for n in 0..5 {
        assert_eq!(
            sim.engine(NodeId(n)).record_value(Key(1)).unwrap(),
            "payload"
        );
    }
}

#[test]
fn single_write_latency_is_physically_plausible() {
    // A lone <Lin,Synch> write on the Table III machine: INV out (~PCIe +
    // send + link), follower persist (~1295 ns), ACK back. Must land in
    // the low-microsecond range, not nanoseconds or milliseconds.
    let cfg = SimConfig::paper_defaults();
    let mut sim = BSim::new(cfg, Arch::baseline(), synch());
    sim.submit_write(0, NodeId(0), Key(1), vec![0u8; 1024].into(), None);
    sim.run_to_idle();
    let recs = sim.drain_completions();
    let done = recs[0].at;
    assert!(
        (2_000..50_000).contains(&done),
        "suspicious single-write latency: {done} ns"
    );
}

#[test]
fn minos_o_beats_minos_b_on_write_latency() {
    let cfg = SimConfig::paper_defaults();
    for model in DdpModel::all_lin() {
        let b = driver::run(Arch::baseline(), &cfg, model, &small_spec(), 3);
        let o = driver::run(Arch::minos_o(), &cfg, model, &small_spec(), 3);
        assert!(b.writes > 0 && o.writes > 0, "{model}: no writes completed");
        assert!(
            o.write_lat.mean() < b.write_lat.mean(),
            "{model}: O ({:.0} ns) not faster than B ({:.0} ns)",
            o.write_lat.mean(),
            b.write_lat.mean()
        );
    }
}

#[test]
fn minos_o_speedup_is_in_paper_range() {
    // Fig 9: "MINOS-O typically reduces the average write latency by 2-3x
    // over MINOS-B". Accept 1.5–5x on the small test workload.
    let cfg = SimConfig::paper_defaults();
    let b = driver::run(Arch::baseline(), &cfg, synch(), &small_spec(), 3);
    let o = driver::run(Arch::minos_o(), &cfg, synch(), &small_spec(), 3);
    let speedup = b.write_lat.mean() / o.write_lat.mean();
    assert!(
        (1.5..6.0).contains(&speedup),
        "write speedup {speedup:.2} outside plausible band"
    );
}

#[test]
fn conservative_models_have_higher_write_latency() {
    // Fig 4: models with more conservative persistency enforcement have
    // higher write latencies. Measured contention-free (one client per
    // node, large database), where the protocol differences are visible.
    let cfg = SimConfig::paper_defaults();
    let spec = WorkloadSpec::ycsb_default()
        .with_records(4096)
        .with_requests_per_node(200);
    let lat = |p: PersistencyModel| {
        driver::run_with_clients(Arch::baseline(), &cfg, DdpModel::lin(p), &spec, 3, 1)
            .write_lat
            .mean()
    };
    let strict = lat(PersistencyModel::Strict);
    let synch = lat(PersistencyModel::Synchronous);
    let event = lat(PersistencyModel::Eventual);
    assert!(
        strict > synch,
        "Strict ({strict:.0}) must exceed Synch ({synch:.0})"
    );
    assert!(
        synch > event,
        "Synch ({synch:.0}) must exceed Eventual ({event:.0})"
    );
}

#[test]
fn communication_dominates_b_write_latency() {
    // §IV: communication contributes 51–73% of MINOS-B write time. Allow
    // a generous 30–90% band on the small workload.
    let cfg = SimConfig::paper_defaults();
    let r = driver::run(Arch::baseline(), &cfg, synch(), &small_spec(), 9);
    assert!(r.write_comm.count() > 0, "no comm samples recorded");
    let frac = r.write_comm.mean() / r.write_lat.mean();
    assert!(
        (0.3..0.95).contains(&frac),
        "comm fraction {frac:.2} implausible (comm {:.0} of {:.0})",
        r.write_comm.mean(),
        r.write_lat.mean()
    );
}

#[test]
fn b_write_latency_grows_with_node_count() {
    // Fig 10: MINOS-B latency increases quickly with node count.
    let spec = small_spec();
    let lat = |nodes: usize| {
        let cfg = SimConfig::paper_defaults().with_nodes(nodes);
        driver::run(Arch::baseline(), &cfg, synch(), &spec, 3)
            .write_lat
            .mean()
    };
    let l2 = lat(2);
    let l10 = lat(10);
    assert!(
        l10 > 1.5 * l2,
        "B latency must grow with nodes: 2n={l2:.0} 10n={l10:.0}"
    );
}

#[test]
fn o_scales_throughput_with_node_count() {
    // Fig 10: MINOS-O rapidly increases throughput with node count.
    let spec = small_spec();
    let tput = |nodes: usize| {
        let cfg = SimConfig::paper_defaults().with_nodes(nodes);
        driver::run(Arch::minos_o(), &cfg, synch(), &spec, 3).total_throughput()
    };
    let t2 = tput(2);
    let t10 = tput(10);
    assert!(
        t10 > 2.0 * t2,
        "O throughput must scale: 2n={t2:.0} 10n={t10:.0}"
    );
}

#[test]
fn tiny_fifos_hurt_and_deep_fifos_saturate() {
    // Fig 13: 1-entry FIFOs are slower; 5 entries ≈ unlimited. The paper
    // measures this on the default 50/50 workload.
    let spec = WorkloadSpec::ycsb_default()
        .with_records(1024)
        .with_requests_per_node(200);
    let lat = |entries: Option<usize>| {
        let cfg = SimConfig::paper_defaults().with_fifo_entries(entries);
        driver::run(Arch::minos_o(), &cfg, synch(), &spec, 3)
            .write_lat
            .mean()
    };
    let one = lat(Some(1));
    let five = lat(Some(5));
    let unlimited = lat(None);
    assert!(
        one > unlimited,
        "1-entry FIFO ({one:.0}) must be slower than unlimited ({unlimited:.0})"
    );
    assert!(
        (five - unlimited).abs() / unlimited < 0.12,
        "5 entries ({five:.0}) should match unlimited ({unlimited:.0})"
    );
    assert!(
        one > 2.0 * five,
        "1 entry ({one:.0}) must serialize far behind 5 ({five:.0})"
    );
}

#[test]
fn o_speedup_grows_with_persist_latency() {
    // Fig 14 first group: speedups increase with the persist latency.
    let spec = small_spec();
    let speedup = |ns_per_kb: u64| {
        let cfg = SimConfig::paper_defaults().with_persist_ns_per_kb(ns_per_kb);
        let b = driver::run(Arch::baseline(), &cfg, synch(), &spec, 3);
        let o = driver::run(Arch::minos_o(), &cfg, synch(), &spec, 3);
        b.write_lat.mean() / o.write_lat.mean()
    };
    let fast = speedup(100);
    let slow = speedup(100_000);
    assert!(
        slow > fast,
        "speedup must grow with persist latency: 100ns→{fast:.2}, 100µs→{slow:.2}"
    );
}

#[test]
fn uniform_and_zipfian_both_converge() {
    // Fig 14 second group: both distributions work; O wins in both.
    let cfg = SimConfig::paper_defaults();
    for dist in [KeyDist::Zipfian, KeyDist::Uniform] {
        let spec = small_spec().with_dist(dist);
        let b = driver::run(Arch::baseline(), &cfg, synch(), &spec, 3);
        let o = driver::run(Arch::minos_o(), &cfg, synch(), &spec, 3);
        assert!(b.writes > 0 && o.writes > 0);
        assert!(o.write_lat.mean() < b.write_lat.mean(), "{dist:?}");
    }
}

#[test]
fn deathstar_o_improves_end_to_end_latency() {
    // Fig 11: MINOS-O reduces Login end-to-end latency (35% on average in
    // the paper; require *an* improvement here).
    let mut cfg = SimConfig::paper_defaults().with_nodes(8);
    cfg.datacenter_rtt_ns = 500_000;
    use minos_workload::deathstar::App;
    for app in [App::SocialNetwork, App::MediaMicroservices] {
        let b = driver::run_deathstar(Arch::baseline(), &cfg, synch(), app, 2);
        let o = driver::run_deathstar(Arch::minos_o(), &cfg, synch(), app, 2);
        assert!(b.login_lat.count() > 0 && o.login_lat.count() > 0);
        assert!(
            o.login_lat.mean() < b.login_lat.mean(),
            "{}: O ({:.0}) not faster than B ({:.0})",
            app.label(),
            o.login_lat.mean(),
            b.login_lat.mean()
        );
    }
}

#[test]
fn combined_is_the_big_win_in_the_ablation() {
    // Fig 12 shape: B+bcast ≈ B; Combined ≪ B; MINOS-O ≤ Combined+batch.
    let spec = WorkloadSpec::ycsb_default()
        .with_records(64)
        .with_write_fraction(1.0)
        .with_requests_per_node(150);
    let cfg = SimConfig::paper_defaults();
    let lat = |arch: Arch| driver::run(arch, &cfg, synch(), &spec, 3).write_lat.mean();

    let b = lat(Arch::baseline());
    let b_bcast = lat(Arch::baseline().with_broadcast());
    let combined = lat(Arch::offload());
    let combined_batch = lat(Arch::offload().with_batching());
    let o = lat(Arch::minos_o());

    assert!(
        (b_bcast - b).abs() / b < 0.15,
        "B+bcast ({b_bcast:.0}) should be close to B ({b:.0})"
    );
    assert!(
        combined < 0.75 * b,
        "Combined ({combined:.0}) must cut B ({b:.0}) substantially"
    );
    assert!(
        o < b * 0.65,
        "MINOS-O ({o:.0}) must roughly halve B ({b:.0})"
    );
    assert!(
        o <= combined_batch * 1.05,
        "full O ({o:.0}) must not lose to Combined+batch ({combined_batch:.0})"
    );
}

#[test]
fn scope_model_runs_with_periodic_persists() {
    let cfg = SimConfig::paper_defaults();
    let spec = small_spec();
    let model = DdpModel::lin(PersistencyModel::Scope);
    let b = driver::run(Arch::baseline(), &cfg, model, &spec, 3);
    assert!(b.writes > 0);
    assert!(
        b.persist_lat.count() > 0,
        "Scope runs must issue [PERSIST]sc transactions"
    );
    let o = driver::run(Arch::minos_o(), &cfg, model, &spec, 3);
    assert!(o.writes > 0 && o.persist_lat.count() > 0);
}

#[test]
fn higher_write_fractions_reduce_read_count() {
    let cfg = SimConfig::paper_defaults();
    let r20 = driver::run(
        Arch::baseline(),
        &cfg,
        synch(),
        &small_spec().with_write_fraction(0.2),
        3,
    );
    let r80 = driver::run(
        Arch::baseline(),
        &cfg,
        synch(),
        &small_spec().with_write_fraction(0.8),
        3,
    );
    assert!(r20.reads > r80.reads);
    assert!(r20.writes < r80.writes);
}

#[test]
fn runs_are_deterministic() {
    let cfg = SimConfig::paper_defaults();
    let a = driver::run(Arch::minos_o(), &cfg, synch(), &small_spec(), 11);
    let b = driver::run(Arch::minos_o(), &cfg, synch(), &small_spec(), 11);
    assert_eq!(a.write_lat, b.write_lat);
    assert_eq!(a.makespan, b.makespan);
}
