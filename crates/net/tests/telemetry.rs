//! Resource-telemetry acceptance: DES runs sample nonzero occupancy and
//! PCIe-byte gauges on both kernels, and the observed-run wrapper
//! returns consistent histograms and critical-path totals.

use minos_core::obs::GaugeKind;
use minos_net::{driver, Arch};
use minos_types::{DdpModel, PersistencyModel, SimConfig};
use minos_workload::WorkloadSpec;

fn spec() -> WorkloadSpec {
    WorkloadSpec::ycsb_default()
        .with_records(200)
        .with_requests_per_node(120)
}

#[test]
fn osim_samples_fifo_occupancy_and_pcie_bytes() {
    let run = driver::run_observed(
        Arch::minos_o(),
        &SimConfig::paper_defaults(),
        DdpModel::lin(PersistencyModel::Strict),
        &spec(),
        7,
        4,
        1 << 18,
    );
    let g = &run.gauges;
    assert!(
        g.high_water(GaugeKind::VfifoOccupancy).unwrap_or(0) > 0,
        "vFIFO occupancy never sampled above zero"
    );
    assert!(
        g.high_water(GaugeKind::DfifoOccupancy).unwrap_or(0) > 0,
        "dFIFO occupancy never sampled above zero"
    );
    assert!(
        g.high_water(GaugeKind::PcieBytes).unwrap_or(0) > 0,
        "no PCIe bytes accounted"
    );
    assert!(
        g.high_water(GaugeKind::InflightTxs).unwrap_or(0) > 0,
        "in-flight transactions never sampled above zero"
    );
}

#[test]
fn bsim_samples_queues_and_pcie_bytes() {
    let run = driver::run_observed(
        Arch::baseline(),
        &SimConfig::paper_defaults(),
        DdpModel::lin(PersistencyModel::Synchronous),
        &spec(),
        7,
        4,
        1 << 18,
    );
    let g = &run.gauges;
    assert!(
        g.high_water(GaugeKind::PcieBytes).unwrap_or(0) > 0,
        "MINOS-B moves every message over PCIe; counter stayed zero"
    );
    // Queue-depth gauges must at least have been sampled (levels may
    // legitimately be caught at zero on an unloaded tick).
    assert!(g.high_water(GaugeKind::HostSendQueue).is_some());
    assert!(g.high_water(GaugeKind::NicSendQueue).is_some());
    assert!(g.high_water(GaugeKind::LockTableSize).is_some());
}

#[test]
fn batching_run_observes_batch_fill() {
    let run = driver::run_observed(
        Arch::baseline().with_batching().with_broadcast(),
        &SimConfig::paper_defaults(),
        DdpModel::lin(PersistencyModel::Strict),
        &spec(),
        7,
        4,
        1 << 18,
    );
    // Fan-outs to 4 peers coalesce, so observed fill must exceed one.
    assert!(
        run.gauges.high_water(GaugeKind::BatchFill).unwrap_or(0) > 1,
        "batching run never observed a coalesced flush"
    );
}

#[test]
fn observed_run_matches_plain_run_and_carries_breakdown() {
    let cfg = SimConfig::paper_defaults();
    let model = DdpModel::lin(PersistencyModel::Eventual);
    let plain = driver::run(Arch::minos_o(), &cfg, model, &spec(), 7);
    let observed = driver::run_observed(
        Arch::minos_o(),
        &cfg,
        model,
        &spec(),
        7,
        cfg.host_cores,
        1 << 18,
    );
    // Attaching telemetry must not perturb the simulated outcome.
    assert_eq!(plain.writes, observed.result.writes);
    assert_eq!(plain.reads, observed.result.reads);
    assert_eq!(plain.makespan, observed.result.makespan);
    assert!(
        observed.analyzed_ops > 0,
        "trace replay reconstructed no ops"
    );
    assert!(
        observed.breakdown.iter().sum::<u64>() > 0,
        "critical-path totals all zero"
    );
    assert!(
        observed.hists.total_count() > 0,
        "histograms recorded nothing"
    );
}
