//! Open-loop driver behavior: determinism, RMW chaining, scan fan-out,
//! the WAN geo profile, and the saturation knee.

use minos_net::{driver, run_open_loop, run_slo_curve, Arch};
use minos_types::{DdpModel, PersistencyModel, SimConfig};
use minos_workload::openloop::{OpenLoopSpec, Scenario};

fn synch() -> DdpModel {
    DdpModel::lin(PersistencyModel::Synchronous)
}

fn small(scenario: Scenario, load: f64) -> OpenLoopSpec {
    OpenLoopSpec::new(scenario, load)
        .with_records(2_000)
        .with_sessions(200)
        .with_total_ops(2_000)
}

/// A compact fingerprint of a run: every field the bench would record.
fn fingerprint(r: &driver::OpenLoopResult) -> Vec<u64> {
    let mut lat = r.lat.clone();
    let mut wr = r.write_lat.clone();
    let mut rd = r.read_lat.clone();
    vec![
        r.submitted,
        r.completed,
        r.makespan,
        r.horizon,
        lat.quantile(0.5),
        lat.quantile(0.99),
        wr.quantile(0.99),
        rd.quantile(0.99),
    ]
}

#[test]
fn same_seed_gives_identical_runs() {
    let cfg = SimConfig::paper_defaults();
    let spec = small(Scenario::YcsbA, 500_000.0);
    let a = run_open_loop(Arch::baseline(), &cfg, synch(), &spec, 42);
    let b = run_open_loop(Arch::baseline(), &cfg, synch(), &spec, 42);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    let c = run_open_loop(Arch::baseline(), &cfg, synch(), &spec, 43);
    assert_ne!(fingerprint(&a), fingerprint(&c), "seed must matter");
}

#[test]
fn every_scenario_completes_all_arrivals_on_both_archs() {
    let cfg = SimConfig::paper_defaults();
    for scenario in Scenario::ALL {
        let spec = OpenLoopSpec::new(scenario, 200_000.0)
            .with_records(1_600)
            .with_sessions(64)
            .with_total_ops(400);
        for arch in [Arch::baseline(), Arch::minos_o()] {
            let r = run_open_loop(arch, &cfg, synch(), &spec, 7);
            assert_eq!(
                r.completed, r.submitted,
                "{scenario}/{arch:?}: {} of {} arrivals completed",
                r.completed, r.submitted
            );
            assert!(
                r.makespan >= r.horizon,
                "{scenario}: completions precede arrivals"
            );
        }
    }
}

#[test]
fn all_five_models_run_ycsb_a_clean() {
    let cfg = SimConfig::paper_defaults();
    for model in [
        PersistencyModel::Synchronous,
        PersistencyModel::Strict,
        PersistencyModel::ReadEnforced,
        PersistencyModel::Eventual,
        PersistencyModel::Scope,
    ] {
        let spec = small(Scenario::YcsbA, 300_000.0).with_total_ops(600);
        let r = run_open_loop(Arch::baseline(), &cfg, DdpModel::lin(model), &spec, 5);
        assert_eq!(r.completed, r.submitted, "{model:?} dropped arrivals");
    }
}

#[test]
fn rmw_latency_exceeds_plain_read_latency() {
    // An RMW is a read plus a chained write: at a load far below
    // capacity its mean end-to-end latency must exceed YCSB-C's
    // read-only mean under the same config.
    let cfg = SimConfig::paper_defaults();
    let rmw = run_open_loop(
        Arch::baseline(),
        &cfg,
        synch(),
        &small(Scenario::YcsbA, 100_000.0),
        3,
    );
    let ro = run_open_loop(
        Arch::baseline(),
        &cfg,
        synch(),
        &small(Scenario::YcsbC, 100_000.0),
        3,
    );
    assert!(
        rmw.write_lat.mean() > ro.read_lat.mean(),
        "rmw mean {} ≤ read mean {}",
        rmw.write_lat.mean(),
        ro.read_lat.mean()
    );
}

#[test]
fn scans_complete_at_their_last_leg() {
    let cfg = SimConfig::paper_defaults();
    let e = run_open_loop(
        Arch::baseline(),
        &cfg,
        synch(),
        &small(Scenario::YcsbE, 100_000.0),
        11,
    );
    assert_eq!(e.completed, e.submitted);
    // Scan latency (last leg) must exceed the single-read floor of a
    // read-only run at the same load.
    let c = run_open_loop(
        Arch::baseline(),
        &cfg,
        synch(),
        &small(Scenario::YcsbC, 100_000.0),
        11,
    );
    assert!(
        e.read_lat.mean() > c.read_lat.mean(),
        "scan mean {} ≤ point-read mean {}",
        e.read_lat.mean(),
        c.read_lat.mean()
    );
}

#[test]
fn geo_profile_pays_the_wan_hop() {
    let cfg = SimConfig::paper_defaults();
    let geo = run_open_loop(
        Arch::baseline(),
        &cfg,
        synch(),
        &small(Scenario::Geo, 50_000.0),
        9,
    );
    let local = run_open_loop(
        Arch::baseline(),
        &cfg,
        synch(),
        &small(Scenario::YcsbB, 50_000.0),
        9,
    );
    assert_eq!(geo.completed, geo.submitted);
    // Cross-region ops pay ≥ 250 µs each way; the mean must reflect it.
    assert!(
        geo.lat.mean() > local.lat.mean() + 100_000.0,
        "geo mean {} vs local mean {}",
        geo.lat.mean(),
        local.lat.mean()
    );
}

#[test]
fn slo_curve_shows_a_saturation_knee_for_b_but_not_o() {
    let cfg = SimConfig::paper_defaults();
    let spec = OpenLoopSpec::new(Scenario::YcsbA, 1.0)
        .with_records(2_000)
        .with_sessions(500)
        .with_total_ops(4_000);
    // MINOS-B saturates around ~1.1 M ops/s on the paper config; MINOS-O
    // at ~5× that. Drive both through the same ascending loads.
    let loads = [250_000.0, 500_000.0, 1_000_000.0, 2_000_000.0, 4_000_000.0];
    let b = run_slo_curve(Arch::baseline(), &cfg, synch(), &spec, 17, &loads);
    let o = run_slo_curve(Arch::minos_o(), &cfg, synch(), &spec, 17, &loads);
    assert_eq!(b.len(), loads.len());

    let p99 = |r: &driver::OpenLoopResult| r.lat.clone().quantile(0.99);
    let b_low = p99(&b[0]);
    let b_high = p99(b.last().unwrap());
    let o_high = p99(o.last().unwrap());
    assert!(
        b_high > 5 * b_low,
        "B never saturated: p99 {b_low} → {b_high}"
    );
    assert!(
        o_high < b_high / 2,
        "O should stay below B's knee: O {o_high} vs B {b_high}"
    );
    // Past saturation the achieved throughput falls behind the offer.
    assert!(b.last().unwrap().drive_ratio() < 0.95);
    assert!(b[0].drive_ratio() > 0.9);
}

#[test]
fn late_arrivals_account_queueing_delay() {
    // The same op count at 10× the offered load must *not* report lower
    // p99 latency on a saturated system: arrivals keep their scheduled
    // timestamps, so backpressure shows as queueing delay.
    let cfg = SimConfig::paper_defaults();
    let spec = small(Scenario::YcsbA, 1.0).with_total_ops(3_000);
    let relaxed = run_open_loop(
        Arch::baseline(),
        &cfg,
        synch(),
        &spec.clone().with_offered_load(200_000.0),
        23,
    );
    let slammed = run_open_loop(
        Arch::baseline(),
        &cfg,
        synch(),
        &spec.with_offered_load(8_000_000.0),
        23,
    );
    let relaxed_p99 = relaxed.lat.clone().quantile(0.99);
    let slammed_p99 = slammed.lat.clone().quantile(0.99);
    assert!(
        slammed_p99 > 10 * relaxed_p99,
        "saturation hid the queueing delay: {slammed_p99} vs {relaxed_p99}"
    );
}
