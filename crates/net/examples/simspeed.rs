//! Wall-clock speed probe for the DES kernels: replays a sharded
//! open-loop YCSB-A schedule and reports events/sec and ops/sec.
//!
//! This is the measurement behind the `simspeed/*` cells in
//! `BENCH_results.json` and the worked 128-node run in EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p minos-net --example simspeed -- \
//!     [b|o] [nodes] [groups] [ops] [offered_load] [par|seq|single] [tick_ns]
//! ```
//!
//! Defaults: `b 128 16 1000000 20000000 seq` with the paper-default
//! telemetry tick (pass `tick_ns` to coarsen or `0` to disable level
//! sampling — useful to isolate scheduling cost from telemetry cost).

use minos_net::driver::{run_open_loop_sharded, ParMode};
use minos_net::Arch;
use minos_types::{DdpModel, PersistencyModel, ShardMap, SimConfig};
use minos_workload::openloop::{OpenLoopSpec, Scenario};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arch_flag = args.first().map_or("b", String::as_str);
    let nodes: usize = args.get(1).map_or(128, |s| s.parse().expect("nodes"));
    let groups: u32 = args.get(2).map_or(16, |s| s.parse().expect("groups"));
    let ops: u64 = args.get(3).map_or(1_000_000, |s| s.parse().expect("ops"));
    let load: f64 = args
        .get(4)
        .map_or(20_000_000.0, |s| s.parse().expect("load"));
    let par = match args.get(5).map(String::as_str) {
        Some("par") => ParMode::Parallel,
        Some("single") => ParMode::Single,
        _ => ParMode::Sequential,
    };
    let tick: Option<u64> = args.get(6).map(|s| s.parse().expect("tick_ns"));

    let arch = match arch_flag {
        "o" => Arch::minos_o(),
        _ => Arch::baseline(),
    };
    let replicas = u16::try_from(nodes / groups as usize).expect("replicas fit u16");
    let map = ShardMap::uniform(groups, nodes, replicas);
    let mut cfg = SimConfig::paper_defaults().with_nodes(nodes);
    if let Some(t) = tick {
        cfg = cfg.with_telemetry_tick(t);
    }
    let model = DdpModel::lin(PersistencyModel::Synchronous);
    let spec = OpenLoopSpec::new(Scenario::YcsbA, load)
        .with_total_ops(ops)
        .with_records(100_000)
        .with_sessions(10_000);

    let t0 = Instant::now();
    let run = run_open_loop_sharded(arch, &cfg, model, &spec, 0x004D_494E_4F53, &map, par);
    let wall = t0.elapsed();

    let secs = wall.as_secs_f64();
    println!(
        "arch={arch_flag} nodes={nodes} groups={groups} ops={ops} mode={:?}",
        par
    );
    println!(
        "completed={} makespan_ms={:.1} events={}",
        run.result.completed,
        run.result.makespan as f64 / 1e6,
        run.events
    );
    println!(
        "wall={:.3}s  events/sec={:.0}  ops/sec={:.0}",
        secs,
        run.events as f64 / secs,
        run.result.completed as f64 / secs
    );
}
