//! Property-based tests of the workload generators.

use minos_workload::{deathstar, KeyDist, WorkloadSpec, Zipfian};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn zipfian_probabilities_decrease_with_rank(n in 2u64..5_000) {
        let z = Zipfian::new(n);
        let mut prev = f64::INFINITY;
        for rank in (0..n).step_by((n as usize / 17).max(1)) {
            let p = z.probability(rank);
            prop_assert!(p <= prev, "rank {rank}: p={p} > prev={prev}");
            prop_assert!(p > 0.0);
            prev = p;
        }
    }

    #[test]
    fn zipfian_samples_in_range_for_any_size(
        n in 1u64..10_000,
        seed in any::<u64>(),
    ) {
        let z = Zipfian::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn streams_are_reproducible(
        seed in any::<u64>(),
        frac in 0.0f64..=1.0,
        records in 1u64..1000,
    ) {
        let spec = WorkloadSpec::ycsb_default()
            .with_records(records)
            .with_write_fraction(frac)
            .with_record_bytes(16);
        let a: Vec<_> = spec.stream(seed).take(100).collect();
        let b: Vec<_> = spec.stream(seed).take(100).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn uniform_keys_stay_in_database(
        records in 1u64..500,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::ycsb_default()
            .with_records(records)
            .with_dist(KeyDist::Uniform);
        for op in spec.stream(seed).take(200) {
            prop_assert!(op.key().0 < records);
        }
    }

    #[test]
    fn login_traces_have_fixed_shape(
        user in any::<u64>(),
        users in 1u64..10_000,
    ) {
        for app in [
            deathstar::App::SocialNetwork,
            deathstar::App::MediaMicroservices,
        ] {
            let t = deathstar::login_trace(app, user, users);
            let (reads, writes) = app.ops_per_login();
            prop_assert_eq!(t.ops.iter().filter(|o| !o.is_write()).count(), reads);
            prop_assert_eq!(t.ops.iter().filter(|o| o.is_write()).count(), writes);
            // Reads strictly precede writes (credential check then session
            // install).
            let first_write = t.ops.iter().position(|o| o.is_write()).unwrap();
            prop_assert!(t.ops[first_write..].iter().all(|o| o.is_write()));
        }
    }

    #[test]
    fn login_traces_of_same_user_are_stable(
        user in any::<u64>(),
        users in 1u64..1_000,
    ) {
        let a = deathstar::login_trace(deathstar::App::SocialNetwork, user, users);
        let b = deathstar::login_trace(deathstar::App::SocialNetwork, user, users);
        prop_assert_eq!(a, b);
    }
}
