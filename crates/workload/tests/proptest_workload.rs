//! Property-based tests of the workload generators.

use minos_workload::openloop::{encode_schedule, OpenLoopSpec, Scenario};
use minos_workload::{deathstar, KeyDist, WorkloadSpec, Zipfian};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn zipfian_probabilities_decrease_with_rank(n in 2u64..5_000) {
        let z = Zipfian::new(n);
        let mut prev = f64::INFINITY;
        for rank in (0..n).step_by((n as usize / 17).max(1)) {
            let p = z.probability(rank);
            prop_assert!(p <= prev, "rank {rank}: p={p} > prev={prev}");
            prop_assert!(p > 0.0);
            prev = p;
        }
    }

    #[test]
    fn zipfian_samples_in_range_for_any_size(
        n in 1u64..10_000,
        seed in any::<u64>(),
    ) {
        let z = Zipfian::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn streams_are_reproducible(
        seed in any::<u64>(),
        frac in 0.0f64..=1.0,
        records in 1u64..1000,
    ) {
        let spec = WorkloadSpec::ycsb_default()
            .with_records(records)
            .with_write_fraction(frac)
            .with_record_bytes(16);
        let a: Vec<_> = spec.stream(seed).take(100).collect();
        let b: Vec<_> = spec.stream(seed).take(100).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn uniform_keys_stay_in_database(
        records in 1u64..500,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::ycsb_default()
            .with_records(records)
            .with_dist(KeyDist::Uniform);
        for op in spec.stream(seed).take(200) {
            prop_assert!(op.key().0 < records);
        }
    }

    #[test]
    fn login_traces_have_fixed_shape(
        user in any::<u64>(),
        users in 1u64..10_000,
    ) {
        for app in [
            deathstar::App::SocialNetwork,
            deathstar::App::MediaMicroservices,
        ] {
            let t = deathstar::login_trace(app, user, users);
            let (reads, writes) = app.ops_per_login();
            prop_assert_eq!(t.ops.iter().filter(|o| !o.is_write()).count(), reads);
            prop_assert_eq!(t.ops.iter().filter(|o| o.is_write()).count(), writes);
            // Reads strictly precede writes (credential check then session
            // install).
            let first_write = t.ops.iter().position(|o| o.is_write()).unwrap();
            prop_assert!(t.ops[first_write..].iter().all(|o| o.is_write()));
        }
    }

    #[test]
    fn login_traces_of_same_user_are_stable(
        user in any::<u64>(),
        users in 1u64..1_000,
    ) {
        let a = deathstar::login_trace(deathstar::App::SocialNetwork, user, users);
        let b = deathstar::login_trace(deathstar::App::SocialNetwork, user, users);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zipfian_hottest_key_tracks_theoretical_mass_across_thetas(
        seed in any::<u64>(),
        theta_idx in 0usize..4,
    ) {
        // Several skews, from mild to the YCSB default: the empirical
        // frequency of rank 0 must sit within an absolute tolerance of
        // its analytic probability mass at every one of them.
        let theta = [0.3, 0.6, 0.9, 0.99][theta_idx];
        let z = Zipfian::with_theta(200, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 60_000u64;
        let hits = (0..trials).filter(|_| z.sample(&mut rng) == 0).count();
        let got = hits as f64 / trials as f64;
        let expected = z.probability(0);
        prop_assert!(
            (got - expected).abs() < 0.02,
            "theta {}: empirical {:.4} vs analytic {:.4}", theta, got, expected
        );
    }

    #[test]
    fn zipfian_sampling_is_deterministic_per_seed(
        n in 1u64..5_000,
        theta_centi in 1u64..100,
        seed in any::<u64>(),
    ) {
        let z = Zipfian::with_theta(n, theta_centi as f64 / 100.0);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn zipfian_theta_orders_skew(seed in any::<u64>()) {
        // Higher θ concentrates more mass on the head — both analytically
        // and empirically.
        let mild = Zipfian::with_theta(100, 0.2);
        let hot = Zipfian::with_theta(100, 0.99);
        prop_assert!(hot.probability(0) > mild.probability(0));
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 20_000;
        let mild_hits = (0..trials).filter(|_| mild.sample(&mut rng) == 0).count();
        let hot_hits = (0..trials).filter(|_| hot.sample(&mut rng) == 0).count();
        prop_assert!(hot_hits > mild_hits, "hot {} vs mild {}", hot_hits, mild_hits);
    }

    #[test]
    fn openloop_schedules_are_byte_identical_per_seed(
        seed in any::<u64>(),
        load_kops in 1u64..10_000,
        scenario_idx in 0usize..9,
    ) {
        let spec = OpenLoopSpec::new(Scenario::ALL[scenario_idx], load_kops as f64 * 1_000.0)
            .with_records(1_000)
            .with_sessions(64)
            .with_total_ops(300);
        let a = encode_schedule(&spec.schedule(seed));
        let b = encode_schedule(&spec.schedule(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn openloop_keys_stay_in_database(
        seed in any::<u64>(),
        scenario_idx in 0usize..9,
    ) {
        let spec = OpenLoopSpec::new(Scenario::ALL[scenario_idx], 500_000.0)
            .with_records(800)
            .with_sessions(32)
            .with_total_ops(400);
        for a in spec.schedule(seed) {
            prop_assert!(a.op.primary_key().0 < 800, "key {} out of range", a.op.primary_key().0);
        }
    }
}
