//! Synthetic DeathStarBench traces for the Figure 11 experiment.
//!
//! The paper evaluates the `Login` function of the `UserService`
//! microservice in the *Social Network* and *Media Microservices*
//! applications, mapping each SET to a client-write and each GET to a
//! client-read, over a 16-node cluster with a 500 µs node-to-node RTT.
//!
//! DeathStarBench is a large C++/Docker benchmark suite; reproducing it
//! wholesale is out of scope (and unnecessary: only the KV access pattern
//! of `Login` reaches MINOS). The traces below reproduce that pattern —
//! a session-cache lookup, credential fetch and verification reads,
//! followed by session/login-marker writes — with the media variant
//! issuing a longer read preamble (its user documents span more records).

use crate::stream::Op;
use bytes::Bytes;
use minos_types::Key;
use serde::{Deserialize, Serialize};

/// Key slots reserved per user: reads land in the lower half of a
/// user's block, writes in the upper half, so a user table of `n`
/// records serves `n / SLOTS_PER_USER` users with disjoint key ranges.
pub const SLOTS_PER_USER: u64 = 16;

/// Which DeathStarBench application the trace models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum App {
    /// Social Network `UserService::Login`.
    SocialNetwork,
    /// Media Microservices `UserService::Login`.
    MediaMicroservices,
}

impl App {
    /// Display label used in the figure.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            App::SocialNetwork => "Social",
            App::MediaMicroservices => "Media",
        }
    }

    /// `(reads, writes)` issued by one `Login` invocation.
    #[must_use]
    pub fn ops_per_login(self) -> (usize, usize) {
        match self {
            App::SocialNetwork => (5, 2),
            App::MediaMicroservices => (7, 3),
        }
    }
}

/// A generated `Login` invocation: the ordered KV operations it performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginTrace {
    /// The application.
    pub app: App,
    /// The user id this login concerns.
    pub user: u64,
    /// KV operations, in program order (GETs then SETs, as the function
    /// validates credentials before it installs the session).
    pub ops: Vec<Op>,
}

/// Generates the `Login` trace for `user` against a user table of
/// `users` records.
///
/// Keys are laid out per-user: the user's profile, credential, session,
/// and (for media) document records occupy adjacent slots.
///
/// # Example
///
/// ```
/// use minos_workload::deathstar::{login_trace, App};
///
/// let t = login_trace(App::SocialNetwork, 17, 1000);
/// let (reads, writes) = App::SocialNetwork.ops_per_login();
/// assert_eq!(t.ops.iter().filter(|o| !o.is_write()).count(), reads);
/// assert_eq!(t.ops.iter().filter(|o| o.is_write()).count(), writes);
/// ```
#[must_use]
pub fn login_trace(app: App, user: u64, users: u64) -> LoginTrace {
    assert!(users > 0, "user table must be non-empty");
    let user = user % users;
    let base = user * SLOTS_PER_USER;
    let (reads, writes) = app.ops_per_login();
    // Small session payloads: Login writes tokens, not media blobs.
    let payload = Bytes::from(vec![0x5Eu8; 128]);

    let mut ops = Vec::with_capacity(reads + writes);
    for i in 0..reads {
        ops.push(Op::Read {
            key: Key(base + i as u64),
        });
    }
    for i in 0..writes {
        ops.push(Op::Write {
            key: Key(base + SLOTS_PER_USER / 2 + i as u64),
            value: payload.clone(),
        });
    }
    LoginTrace { app, user, ops }
}

/// A batch of login invocations with rotating users (the Fig 11 driver).
#[must_use]
pub fn login_batch(app: App, logins: usize, users: u64) -> Vec<LoginTrace> {
    (0..logins)
        .map(|i| login_trace(app, i as u64 * 7 + 1, users))
        .collect()
}

/// A DeathStar Social-Network request flow. `Login` is the paper's
/// Figure 11 function; `ComposePost` and `HomeTimeline` are the two
/// other dominant Social-Network endpoints, modelled by their KV access
/// patterns the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Flow {
    /// `UserService::Login` — credential reads then session writes.
    Login,
    /// `ComposePostService::ComposePost` — profile/graph/media reads,
    /// then a post write fanned into the author's and followers'
    /// timelines (one multi-key transaction in MINOS terms).
    ComposePost,
    /// `HomeTimelineService::ReadHomeTimeline` — a profile read followed
    /// by a contiguous fan-in over the timeline entries (a scan).
    HomeTimeline,
}

impl Flow {
    /// Display label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Flow::Login => "login",
            Flow::ComposePost => "compose-post",
            Flow::HomeTimeline => "home-timeline",
        }
    }
}

/// A generated flow invocation: the ordered KV operations it performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowTrace {
    /// The flow.
    pub flow: Flow,
    /// The user id this invocation concerns.
    pub user: u64,
    /// KV operations, in program order.
    pub ops: Vec<Op>,
}

/// Generates the trace of one `flow` invocation for `user` against a
/// user table of `users` records, on the same per-user
/// [`SLOTS_PER_USER`]-slot key layout as [`login_trace`].
///
/// * `ComposePost`: 3 reads (profile, social graph, media) from the
///   lower half of the user's block, then 3 adjacent writes (the post
///   plus the user-/home-timeline markers) in the upper half — the
///   contiguous write burst drivers collapse into one multi-key
///   transaction.
/// * `HomeTimeline`: a profile read, then a contiguous 6-entry fan-in
///   over the timeline slots — the run drivers collapse into a scan.
/// * `Login`: delegates to [`login_trace`] (Social Network variant).
#[must_use]
pub fn flow_trace(flow: Flow, user: u64, users: u64) -> FlowTrace {
    assert!(users > 0, "user table must be non-empty");
    let user = user % users;
    let base = user * SLOTS_PER_USER;
    let payload = Bytes::from(vec![0x5Eu8; 128]);
    let ops = match flow {
        Flow::Login => login_trace(App::SocialNetwork, user, users).ops,
        Flow::ComposePost => {
            let mut ops: Vec<Op> = (0..3).map(|i| Op::Read { key: Key(base + i) }).collect();
            ops.extend((0..3).map(|i| Op::Write {
                key: Key(base + SLOTS_PER_USER / 2 + i),
                value: payload.clone(),
            }));
            ops
        }
        Flow::HomeTimeline => {
            let mut ops = vec![Op::Read { key: Key(base) }];
            ops.extend((0..6).map(|i| Op::Read {
                key: Key(base + 2 + i),
            }));
            ops
        }
    };
    FlowTrace { flow, user, ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_trace_shape() {
        let t = login_trace(App::SocialNetwork, 3, 100);
        assert_eq!(t.ops.len(), 7);
        assert!(!t.ops[0].is_write(), "reads come first");
        assert!(t.ops[6].is_write(), "writes close the function");
    }

    #[test]
    fn media_trace_is_heavier() {
        let s = login_trace(App::SocialNetwork, 1, 10);
        let m = login_trace(App::MediaMicroservices, 1, 10);
        assert!(m.ops.len() > s.ops.len());
    }

    #[test]
    fn different_users_touch_disjoint_keys() {
        let a = login_trace(App::SocialNetwork, 0, 100);
        let b = login_trace(App::SocialNetwork, 1, 100);
        let keys_a: std::collections::BTreeSet<_> = a.ops.iter().map(|o| o.key()).collect();
        let keys_b: std::collections::BTreeSet<_> = b.ops.iter().map(|o| o.key()).collect();
        assert!(keys_a.is_disjoint(&keys_b));
    }

    #[test]
    fn user_id_wraps_at_table_size() {
        let t = login_trace(App::SocialNetwork, 105, 100);
        assert_eq!(t.user, 5);
    }

    #[test]
    fn batch_produces_requested_logins() {
        let batch = login_batch(App::MediaMicroservices, 12, 50);
        assert_eq!(batch.len(), 12);
    }

    #[test]
    fn labels_match_figure() {
        assert_eq!(App::SocialNetwork.label(), "Social");
        assert_eq!(App::MediaMicroservices.label(), "Media");
    }

    #[test]
    fn compose_post_reads_then_writes_contiguously() {
        let t = flow_trace(Flow::ComposePost, 4, 100);
        assert_eq!(t.ops.iter().filter(|o| !o.is_write()).count(), 3);
        let writes: Vec<u64> = t
            .ops
            .iter()
            .filter(|o| o.is_write())
            .map(|o| o.key().0)
            .collect();
        assert_eq!(writes.len(), 3);
        assert!(
            writes.windows(2).all(|w| w[1] == w[0] + 1),
            "post + timeline writes must be adjacent for the multi-key barrier: {writes:?}"
        );
    }

    #[test]
    fn home_timeline_is_read_only_with_contiguous_fanin() {
        let t = flow_trace(Flow::HomeTimeline, 9, 100);
        assert!(t.ops.iter().all(|o| !o.is_write()));
        let keys: Vec<u64> = t.ops.iter().skip(1).map(|o| o.key().0).collect();
        assert_eq!(keys.len(), 6);
        assert!(keys.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn login_flow_matches_login_trace() {
        let t = flow_trace(Flow::Login, 17, 1000);
        assert_eq!(t.ops, login_trace(App::SocialNetwork, 17, 1000).ops);
    }

    #[test]
    fn flows_stay_inside_the_user_block() {
        for flow in [Flow::Login, Flow::ComposePost, Flow::HomeTimeline] {
            let t = flow_trace(flow, 6, 100);
            for op in &t.ops {
                let k = op.key().0;
                assert!(
                    (6 * SLOTS_PER_USER..7 * SLOTS_PER_USER).contains(&k),
                    "{flow:?}: key {k} escapes the user block"
                );
            }
        }
    }
}
