//! Open-loop session generation: Poisson arrivals at a configurable
//! offered load over tens of thousands of virtual client sessions.
//!
//! The closed-loop streams of [`crate::WorkloadSpec`] submit a new
//! request only when the previous one completes, so a slow system simply
//! *receives less load* — coordinator backpressure is invisible. The
//! open-loop generator fixes the arrival process instead: inter-arrival
//! gaps are exponential with mean `1e9 / offered_load` nanoseconds,
//! independent of completions, so a saturated system accumulates
//! queueing delay that shows up as latency (the p99 "knee" of a
//! latency-vs-offered-load curve) rather than as reduced drive.
//!
//! A schedule is a flat, deterministic list of [`Arrival`]s: the
//! nanosecond the operation enters the system, the virtual session that
//! issued it, and the [`SessionOp`] itself. Sessions partition the
//! arrival stream the way independent clients would (per-session flow
//! state for the DeathStar scenarios lives here too), but arrivals stay
//! globally Poisson — the superposition of many thin client processes.
//!
//! # Scenarios
//!
//! [`Scenario`] widens the workload library beyond the closed-loop
//! YCSB-C-shaped mix:
//!
//! | flag         | mix                                                    |
//! |--------------|--------------------------------------------------------|
//! | `ycsb-a`     | 50 % read / 50 % read-modify-write, zipfian keys       |
//! | `ycsb-b`     | 95 % read / 5 % write, zipfian                         |
//! | `ycsb-c`     | 100 % read, zipfian                                    |
//! | `ycsb-d`     | 95 % recency-skewed read / 5 % insert at the frontier  |
//! | `ycsb-e`     | 95 % scan (1–`scan_max` keys) / 5 % write              |
//! | `ycsb-f`     | 50 % read / 50 % read-modify-write, uniform keys       |
//! | `compose`    | DeathStar compose-post / home-timeline session flows   |
//! | `skew`       | hot-key storm: 60 % of traffic on a 64-key zipf head   |
//! | `geo`        | 95/5 read/write under a 500 µs+ WAN cross-region hop   |
//!
//! Every scenario doubles as a torture workload: `minos-torture
//! --workload <flag>` drives the same mixes against the live runtimes.
//!
//! # Example
//!
//! ```
//! use minos_workload::openloop::{OpenLoopSpec, Scenario};
//!
//! let spec = OpenLoopSpec::new(Scenario::YcsbA, 1_000_000.0) // 1 M ops/s
//!     .with_sessions(10_000)
//!     .with_total_ops(5_000);
//! let sched = spec.schedule(42);
//! assert_eq!(sched.len(), 5_000);
//! // Same seed, same build: byte-identical schedules.
//! assert_eq!(
//!     minos_workload::openloop::encode_schedule(&sched),
//!     minos_workload::openloop::encode_schedule(&spec.schedule(42)),
//! );
//! ```

use crate::deathstar::{flow_trace, Flow, SLOTS_PER_USER};
use crate::stream::Op;
use crate::zipf::Zipfian;
use bytes::Bytes;
use minos_types::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// A workload scenario: the op mix and key distribution one open-loop
/// (or torture) session stream follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// YCSB-A: 50 % read / 50 % read-modify-write, zipfian keys.
    YcsbA,
    /// YCSB-B: 95 % read / 5 % write, zipfian keys.
    YcsbB,
    /// YCSB-C: 100 % read, zipfian keys.
    YcsbC,
    /// YCSB-D: 95 % recency-skewed read / 5 % insert at a moving
    /// frontier ("latest" distribution).
    YcsbD,
    /// YCSB-E: 95 % short scan / 5 % write.
    YcsbE,
    /// YCSB-F: 50 % read / 50 % read-modify-write, uniform keys.
    YcsbF,
    /// DeathStar compose-post / home-timeline session flows.
    Compose,
    /// Hot-key storm: most traffic concentrated on a tiny zipf head,
    /// half of it writes.
    Skew,
    /// WAN geo profile: a plain 95/5 mix, but the driver applies a
    /// 500 µs+ cross-region hop to every routed message.
    Geo,
}

impl Scenario {
    /// Every scenario, in flag order.
    pub const ALL: [Scenario; 9] = [
        Scenario::YcsbA,
        Scenario::YcsbB,
        Scenario::YcsbC,
        Scenario::YcsbD,
        Scenario::YcsbE,
        Scenario::YcsbF,
        Scenario::Compose,
        Scenario::Skew,
        Scenario::Geo,
    ];

    /// The stable CLI flag / bench-cell label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scenario::YcsbA => "ycsb-a",
            Scenario::YcsbB => "ycsb-b",
            Scenario::YcsbC => "ycsb-c",
            Scenario::YcsbD => "ycsb-d",
            Scenario::YcsbE => "ycsb-e",
            Scenario::YcsbF => "ycsb-f",
            Scenario::Compose => "compose",
            Scenario::Skew => "skew",
            Scenario::Geo => "geo",
        }
    }

    /// Parses [`Scenario::label`] output back (the `--workload` flag).
    #[must_use]
    pub fn from_flag(s: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|sc| sc.label() == s)
    }

    /// The WAN round-trip this scenario imposes on cross-region hops
    /// (`None` for datacenter-local scenarios). Drivers add this to
    /// their link model — the DES runtime feeds it through
    /// `timing::route_hop_ns` / the datacenter RTT, the threaded
    /// torture driver inflates its wire latency.
    #[must_use]
    pub fn wan_rtt_ns(self) -> Option<u64> {
        matches!(self, Scenario::Geo).then_some(500_000)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One generated session operation. Supersets the closed-loop
/// [`Op`]: read-modify-write and scans are first-class so the
/// drivers can chain the dependent write / fan the range out, and the
/// torture oracles see them decomposed into the reads and writes they
/// are made of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOp {
    /// Blind write of `value` to `key`.
    Write {
        /// Target key.
        key: Key,
        /// Payload (of the spec's record size).
        value: Bytes,
    },
    /// Point read of `key`.
    Read {
        /// Target key.
        key: Key,
    },
    /// Read-modify-write: read `key`, then write `value` to the same
    /// key once the read completes. Latency is accounted end-to-end
    /// from the arrival to the dependent write's completion.
    Rmw {
        /// Target key.
        key: Key,
        /// Payload of the dependent write.
        value: Bytes,
    },
    /// Range scan: reads of `start .. start + len`, fanned out at the
    /// arrival; complete when the last leg completes.
    Scan {
        /// First key of the range.
        start: Key,
        /// Number of keys read (≥ 1).
        len: u32,
    },
    /// Multi-key transactional write: all keys written under one
    /// completion barrier.
    MultiWrite {
        /// Target keys (distinct).
        keys: Vec<Key>,
        /// Payload written to each key.
        value: Bytes,
    },
}

impl SessionOp {
    /// Whether the op performs any write.
    #[must_use]
    pub fn writes(&self) -> bool {
        matches!(
            self,
            SessionOp::Write { .. } | SessionOp::Rmw { .. } | SessionOp::MultiWrite { .. }
        )
    }

    /// The first key the op touches (scan start / first batch key).
    #[must_use]
    pub fn primary_key(&self) -> Key {
        match self {
            SessionOp::Write { key, .. } | SessionOp::Read { key } | SessionOp::Rmw { key, .. } => {
                *key
            }
            SessionOp::Scan { start, .. } => *start,
            SessionOp::MultiWrite { keys, .. } => keys[0],
        }
    }

    /// Stable label for histograms and reports.
    #[must_use]
    pub fn kind_label(&self) -> &'static str {
        match self {
            SessionOp::Write { .. } => "write",
            SessionOp::Read { .. } => "read",
            SessionOp::Rmw { .. } => "rmw",
            SessionOp::Scan { .. } => "scan",
            SessionOp::MultiWrite { .. } => "multi_write",
        }
    }
}

/// One scheduled arrival: when, which virtual session, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Nanosecond the operation enters the system (from t = 0).
    pub at_ns: u64,
    /// Virtual session that issued it.
    pub session: u32,
    /// The operation.
    pub op: SessionOp,
}

/// An open-loop workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// The scenario (op mix + key distribution).
    pub scenario: Scenario,
    /// Offered load in operations per second. The arrival process is
    /// Poisson with this rate, independent of completions.
    pub offered_load: f64,
    /// Virtual client sessions the arrivals are spread over.
    pub sessions: u32,
    /// Total operations in the schedule.
    pub total_ops: u64,
    /// Records in the database.
    pub records: u64,
    /// Payload bytes per written record.
    pub record_bytes: usize,
    /// Largest scan length YCSB-E draws (uniform on `1..=scan_max`).
    pub scan_max: u32,
}

impl OpenLoopSpec {
    /// A spec at `offered_load` ops/s with the library defaults:
    /// 10 000 sessions, 20 000 ops, 100 000 records, 128-byte payloads,
    /// scans up to 16 keys.
    ///
    /// # Panics
    ///
    /// Panics if `offered_load` is not strictly positive and finite.
    #[must_use]
    pub fn new(scenario: Scenario, offered_load: f64) -> Self {
        let spec = OpenLoopSpec {
            scenario,
            offered_load,
            sessions: 10_000,
            total_ops: 20_000,
            records: 100_000,
            record_bytes: 128,
            scan_max: 16,
        };
        spec.check();
        spec
    }

    fn check(&self) {
        assert!(
            self.offered_load.is_finite() && self.offered_load > 0.0,
            "offered load must be a positive rate (ops/s)"
        );
        assert!(self.sessions > 0, "need at least one session");
        assert!(self.records > 0, "database must be non-empty");
        assert!(self.scan_max > 0, "scans need at least one key");
    }

    /// Builder-style offered-load override.
    #[must_use]
    pub fn with_offered_load(mut self, ops_per_sec: f64) -> Self {
        self.offered_load = ops_per_sec;
        self.check();
        self
    }

    /// Builder-style session-count override.
    #[must_use]
    pub fn with_sessions(mut self, sessions: u32) -> Self {
        self.sessions = sessions;
        self.check();
        self
    }

    /// Builder-style schedule-length override.
    #[must_use]
    pub fn with_total_ops(mut self, ops: u64) -> Self {
        self.total_ops = ops;
        self
    }

    /// Builder-style database-size override.
    #[must_use]
    pub fn with_records(mut self, records: u64) -> Self {
        self.records = records;
        self.check();
        self
    }

    /// Builder-style payload-size override.
    #[must_use]
    pub fn with_record_bytes(mut self, bytes: usize) -> Self {
        self.record_bytes = bytes;
        self
    }

    /// Builder-style scan-length override.
    #[must_use]
    pub fn with_scan_max(mut self, max: u32) -> Self {
        self.scan_max = max;
        self.check();
        self
    }

    /// The mean inter-arrival gap, in nanoseconds.
    #[must_use]
    pub fn mean_gap_ns(&self) -> f64 {
        1e9 / self.offered_load
    }

    /// Generates the deterministic arrival schedule for `seed`. The
    /// same seed and spec produce a byte-identical schedule (see
    /// [`encode_schedule`]) — the foundation of the bench gate's
    /// self-compare.
    #[must_use]
    pub fn schedule(&self, seed: u64) -> Vec<Arrival> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = ScenarioGen::new(self);
        let mut arrivals = Vec::with_capacity(usize::try_from(self.total_ops).unwrap_or(0));
        let mut t_ns = 0.0f64;
        for _ in 0..self.total_ops {
            // Exponential gap via inverse CDF; 1 - u avoids ln(0).
            let u: f64 = rng.gen();
            t_ns += -(1.0 - u).ln() * self.mean_gap_ns();
            let session = rng.gen_range(0..self.sessions);
            let op = gen.next_op(session, &mut rng);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            arrivals.push(Arrival {
                at_ns: t_ns as u64,
                session,
                op,
            });
        }
        arrivals
    }
}

/// Per-schedule scenario state: key distributions, the YCSB-D insert
/// frontier, and per-session DeathStar flow queues.
struct ScenarioGen {
    scenario: Scenario,
    records: u64,
    scan_max: u32,
    zipf: Zipfian,
    /// The 64-key storm head of the skew scenario.
    hot: Zipfian,
    /// YCSB-D insert frontier (the "latest" record).
    frontier: u64,
    /// Per-session pending DeathStar flow ops (compose scenario only).
    flows: HashMap<u32, VecDeque<SessionOp>>,
    payload: Bytes,
}

impl ScenarioGen {
    fn new(spec: &OpenLoopSpec) -> Self {
        ScenarioGen {
            scenario: spec.scenario,
            records: spec.records,
            scan_max: spec.scan_max,
            zipf: Zipfian::new(spec.records),
            hot: Zipfian::new(spec.records.min(64)),
            frontier: 0,
            flows: HashMap::new(),
            payload: Bytes::from(vec![0xAB; spec.record_bytes]),
        }
    }

    fn next_op(&mut self, session: u32, rng: &mut StdRng) -> SessionOp {
        let roll = rng.gen_range(0u32..100);
        match self.scenario {
            Scenario::YcsbA => {
                let key = Key(self.zipf.sample(rng));
                if roll < 50 {
                    SessionOp::Rmw {
                        key,
                        value: self.payload.clone(),
                    }
                } else {
                    SessionOp::Read { key }
                }
            }
            Scenario::YcsbB | Scenario::Geo => {
                let key = Key(self.zipf.sample(rng));
                if roll < 5 {
                    SessionOp::Write {
                        key,
                        value: self.payload.clone(),
                    }
                } else {
                    SessionOp::Read { key }
                }
            }
            Scenario::YcsbC => SessionOp::Read {
                key: Key(self.zipf.sample(rng)),
            },
            Scenario::YcsbD => {
                if roll < 5 {
                    // Insert at the moving frontier.
                    self.frontier = (self.frontier + 1) % self.records;
                    SessionOp::Write {
                        key: Key(self.frontier),
                        value: self.payload.clone(),
                    }
                } else {
                    // "Latest" distribution: zipf-distributed distance
                    // behind the frontier.
                    let dist = self.zipf.sample(rng);
                    let key = (self.frontier + self.records - dist % self.records) % self.records;
                    SessionOp::Read { key: Key(key) }
                }
            }
            Scenario::YcsbE => {
                if roll < 5 {
                    SessionOp::Write {
                        key: Key(self.zipf.sample(rng)),
                        value: self.payload.clone(),
                    }
                } else {
                    let start = self.zipf.sample(rng);
                    let len = 1 + rng.gen_range(0..self.scan_max);
                    // Clamp the range inside the database.
                    let len = len.min(u32::try_from(self.records - start).unwrap_or(u32::MAX));
                    SessionOp::Scan {
                        start: Key(start),
                        len: len.max(1),
                    }
                }
            }
            Scenario::YcsbF => {
                let key = Key(rng.gen_range(0..self.records));
                if roll < 50 {
                    SessionOp::Rmw {
                        key,
                        value: self.payload.clone(),
                    }
                } else {
                    SessionOp::Read { key }
                }
            }
            Scenario::Skew => {
                // The storm: 60 % of traffic lands on the 64-key zipf
                // head (most of that on rank 0), the rest spreads out.
                let key = if roll < 60 {
                    Key(self.hot.sample(rng))
                } else {
                    Key(rng.gen_range(0..self.records))
                };
                if rng.gen_range(0u32..100) < 50 {
                    SessionOp::Write {
                        key,
                        value: self.payload.clone(),
                    }
                } else {
                    SessionOp::Read { key }
                }
            }
            Scenario::Compose => self.next_compose_op(session, rng),
        }
    }

    /// Compose scenario: each session runs DeathStar flows op-by-op in
    /// program order; one arrival consumes one op of the session's
    /// current flow, and a drained session starts a fresh flow
    /// (1-in-3 compose-post, else home-timeline).
    fn next_compose_op(&mut self, session: u32, rng: &mut StdRng) -> SessionOp {
        let users = (self.records / SLOTS_PER_USER).max(1);
        let queue = self.flows.entry(session).or_default();
        if queue.is_empty() {
            let flow = if rng.gen_range(0u32..3) == 0 {
                Flow::ComposePost
            } else {
                Flow::HomeTimeline
            };
            let trace = flow_trace(flow, rng.gen_range(0..users), users);
            // Leading reads stay point reads; a trailing run of ≥2
            // contiguous ops collapses into the flow's bulk op — the
            // timeline fan-in becomes a scan, the post+timeline write
            // burst becomes one multi-key transaction.
            let writes: Vec<Key> = trace
                .ops
                .iter()
                .filter(|o| o.is_write())
                .map(Op::key)
                .collect();
            let reads: Vec<Key> = trace
                .ops
                .iter()
                .filter(|o| !o.is_write())
                .map(Op::key)
                .collect();
            match flow {
                Flow::HomeTimeline => {
                    // Profile read, then the contiguous timeline fan-in
                    // as one scan.
                    if let Some(&first) = reads.first() {
                        queue.push_back(SessionOp::Read { key: first });
                    }
                    if reads.len() > 1 {
                        let start = reads[1];
                        queue.push_back(SessionOp::Scan {
                            start,
                            len: u32::try_from(reads.len() - 1).unwrap_or(1),
                        });
                    }
                }
                Flow::ComposePost | Flow::Login => {
                    for key in reads {
                        queue.push_back(SessionOp::Read { key });
                    }
                    if writes.len() > 1 {
                        queue.push_back(SessionOp::MultiWrite {
                            keys: writes,
                            value: self.payload.clone(),
                        });
                    } else {
                        for key in writes {
                            queue.push_back(SessionOp::Write {
                                key,
                                value: self.payload.clone(),
                            });
                        }
                    }
                }
            }
        }
        queue.pop_front().expect("flow refill produced no ops")
    }
}

/// Serializes a schedule to a canonical byte string — the determinism
/// tests compare these for byte-identity across runs.
#[must_use]
pub fn encode_schedule(schedule: &[Arrival]) -> Vec<u8> {
    let mut out = Vec::with_capacity(schedule.len() * 24);
    for a in schedule {
        out.extend_from_slice(&a.at_ns.to_le_bytes());
        out.extend_from_slice(&a.session.to_le_bytes());
        match &a.op {
            SessionOp::Write { key, value } => {
                out.push(0);
                out.extend_from_slice(&key.0.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            }
            SessionOp::Read { key } => {
                out.push(1);
                out.extend_from_slice(&key.0.to_le_bytes());
            }
            SessionOp::Rmw { key, value } => {
                out.push(2);
                out.extend_from_slice(&key.0.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            }
            SessionOp::Scan { start, len } => {
                out.push(3);
                out.extend_from_slice(&start.0.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            SessionOp::MultiWrite { keys, value } => {
                out.push(4);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    out.extend_from_slice(&k.0.to_le_bytes());
                }
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            }
        }
    }
    out
}

/// FNV-1a digest of [`encode_schedule`] — a compact fingerprint for
/// logs and reports.
#[must_use]
pub fn schedule_digest(schedule: &[Arrival]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in encode_schedule(schedule) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(sc: Scenario) -> OpenLoopSpec {
        OpenLoopSpec::new(sc, 1_000_000.0)
            .with_records(1_000)
            .with_sessions(50)
            .with_total_ops(2_000)
    }

    #[test]
    fn labels_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::from_flag(sc.label()), Some(sc));
        }
        assert_eq!(Scenario::from_flag("ycsb-z"), None);
    }

    #[test]
    fn mean_gap_tracks_offered_load() {
        let s = spec(Scenario::YcsbB);
        let sched = s.schedule(7);
        let span = sched.last().unwrap().at_ns as f64;
        let mean = span / sched.len() as f64;
        // Poisson: empirical mean gap within 10 % of 1/λ = 1000 ns.
        assert!(
            (mean - s.mean_gap_ns()).abs() < s.mean_gap_ns() * 0.1,
            "mean gap {mean:.0} ns vs expected {:.0} ns",
            s.mean_gap_ns()
        );
    }

    #[test]
    fn arrivals_are_monotone_and_sessions_in_range() {
        let s = spec(Scenario::Compose);
        let sched = s.schedule(3);
        for w in sched.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
        assert!(sched.iter().all(|a| a.session < s.sessions));
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for sc in Scenario::ALL {
            let s = spec(sc);
            let a = encode_schedule(&s.schedule(11));
            let b = encode_schedule(&s.schedule(11));
            let c = encode_schedule(&s.schedule(12));
            assert_eq!(a, b, "{sc}: same seed diverged");
            assert_ne!(a, c, "{sc}: different seeds collided");
        }
    }

    #[test]
    fn ycsb_a_is_half_rmw() {
        let sched = spec(Scenario::YcsbA).schedule(5);
        let rmw = sched
            .iter()
            .filter(|a| matches!(a.op, SessionOp::Rmw { .. }))
            .count();
        let frac = rmw as f64 / sched.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "rmw fraction {frac}");
    }

    #[test]
    fn ycsb_c_is_read_only() {
        let sched = spec(Scenario::YcsbC).schedule(5);
        assert!(sched.iter().all(|a| !a.op.writes()));
    }

    #[test]
    fn ycsb_e_scans_stay_in_range() {
        let s = spec(Scenario::YcsbE);
        let sched = s.schedule(9);
        let mut scans = 0;
        for a in &sched {
            if let SessionOp::Scan { start, len } = a.op {
                scans += 1;
                assert!(len >= 1 && len <= s.scan_max);
                assert!(start.0 + u64::from(len) <= s.records);
            }
        }
        assert!(scans > sched.len() / 2, "E should be scan-heavy: {scans}");
    }

    #[test]
    fn skew_concentrates_on_the_head() {
        let sched = spec(Scenario::Skew).schedule(13);
        let head = sched.iter().filter(|a| a.op.primary_key().0 < 64).count();
        assert!(
            head * 2 > sched.len(),
            "hot head drew only {head}/{} ops",
            sched.len()
        );
    }

    #[test]
    fn compose_sessions_issue_flow_ops_in_order() {
        let sched = spec(Scenario::Compose).schedule(21);
        let multi = sched
            .iter()
            .filter(|a| matches!(a.op, SessionOp::MultiWrite { .. }))
            .count();
        let scans = sched
            .iter()
            .filter(|a| matches!(a.op, SessionOp::Scan { .. }))
            .count();
        assert!(multi > 0, "compose never issued a multi-key post");
        assert!(scans > 0, "compose never issued a timeline fan-in");
    }

    #[test]
    fn geo_declares_a_wan_rtt() {
        assert_eq!(Scenario::Geo.wan_rtt_ns(), Some(500_000));
        assert_eq!(Scenario::YcsbA.wan_rtt_ns(), None);
    }

    #[test]
    fn digest_is_stable_for_equal_schedules() {
        let s = spec(Scenario::YcsbF);
        assert_eq!(
            schedule_digest(&s.schedule(2)),
            schedule_digest(&s.schedule(2))
        );
    }
}
