//! The YCSB zipfian generator.

use rand::Rng;

/// Zipfian key-index generator over `0..n`, following the YCSB
/// implementation of Gray et al.'s algorithm with θ = 0.99.
///
/// Item 0 is the most popular; popularity decays as `1 / rank^θ`.
///
/// # Example
///
/// ```
/// use minos_workload::Zipfian;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let z = Zipfian::new(1000);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut hot = 0usize;
/// for _ in 0..10_000 {
///     if z.sample(&mut rng) == 0 {
///         hot += 1;
///     }
/// }
/// // Rank 0 draws a few percent of all traffic from a 1000-item set.
/// assert!(hot > 200, "hot key undersampled: {hot}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// YCSB default skew.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a generator over `0..n` with the default θ = 0.99.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: u64) -> Self {
        Zipfian::with_theta(n, Self::DEFAULT_THETA)
    }

    /// Creates a generator with an explicit skew parameter θ ∈ (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or θ is outside (0, 1).
    #[must_use]
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty item set");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; the experiments use n ≤ 100 000, and the
        // constructor runs once per workload.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one item index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(self.n - 1)
    }

    /// The analytic probability of drawing item `rank` (for tests).
    #[must_use]
    pub fn probability(&self, rank: u64) -> f64 {
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Exposes ζ(2, θ) (used by tests validating the constants).
    #[must_use]
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(100);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn head_is_much_hotter_than_tail() {
        let z = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(
            counts[0] > 20 * counts[500].max(1),
            "head {} vs mid {}",
            counts[0],
            counts[500]
        );
    }

    #[test]
    fn empirical_head_frequency_tracks_analytic() {
        let z = Zipfian::new(100);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 400_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            if z.sample(&mut rng) == 0 {
                hits += 1;
            }
        }
        let expected = z.probability(0);
        let got = hits as f64 / trials as f64;
        assert!(
            (got - expected).abs() < 0.02,
            "expected ≈{expected:.3}, got {got:.3}"
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipfian::new(500);
        let total: f64 = (0..500).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_item_always_samples_zero() {
        let z = Zipfian::new(1);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_items_panics() {
        let _ = Zipfian::new(0);
    }
}
