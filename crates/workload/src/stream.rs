//! YCSB-style request streams.

use crate::zipf::Zipfian;
use bytes::Bytes;
use minos_types::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Key distribution for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KeyDist {
    /// YCSB zipfian, θ = 0.99 (the paper's default).
    #[default]
    Zipfian,
    /// Uniform over the database.
    Uniform,
}

/// One generated client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Write `value` to `key`.
    Write {
        /// Target key.
        key: Key,
        /// Generated payload (of the spec's record size).
        value: Bytes,
    },
    /// Read `key`.
    Read {
        /// Target key.
        key: Key,
    },
}

impl Op {
    /// Whether this is a write.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }

    /// The operation's key.
    #[must_use]
    pub fn key(&self) -> Key {
        match self {
            Op::Write { key, .. } | Op::Read { key } => *key,
        }
    }
}

/// A YCSB-style workload description.
///
/// Defaults mirror §VII: 100 000 records, 1 KB record size, zipfian keys,
/// 50 % writes, 100 000 requests per node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of records in the database.
    pub records: u64,
    /// Payload size of each record, in bytes.
    pub record_bytes: usize,
    /// Fraction of operations that are writes (0.0–1.0).
    pub write_fraction: f64,
    /// Key distribution.
    pub dist: KeyDist,
    /// Requests issued per node.
    pub requests_per_node: u64,
}

impl WorkloadSpec {
    /// The paper's default workload.
    #[must_use]
    pub fn ycsb_default() -> Self {
        WorkloadSpec {
            records: 100_000,
            record_bytes: 1024,
            write_fraction: 0.5,
            dist: KeyDist::Zipfian,
            requests_per_node: 100_000,
        }
    }

    /// Builder-style write-fraction override.
    ///
    /// # Panics
    ///
    /// Panics if `f` is outside `[0, 1]`.
    #[must_use]
    pub fn with_write_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "write fraction must be in [0,1]");
        self.write_fraction = f;
        self
    }

    /// Builder-style database-size override.
    #[must_use]
    pub fn with_records(mut self, records: u64) -> Self {
        self.records = records;
        self
    }

    /// Builder-style distribution override.
    #[must_use]
    pub fn with_dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// Builder-style record-size override.
    #[must_use]
    pub fn with_record_bytes(mut self, bytes: usize) -> Self {
        self.record_bytes = bytes;
        self
    }

    /// Builder-style request-count override.
    #[must_use]
    pub fn with_requests_per_node(mut self, n: u64) -> Self {
        self.requests_per_node = n;
        self
    }

    /// Creates a deterministic request stream seeded with `seed`.
    #[must_use]
    pub fn stream(&self, seed: u64) -> RequestStream {
        RequestStream {
            spec: self.clone(),
            zipf: Zipfian::new(self.records),
            rng: StdRng::seed_from_u64(seed),
            issued: 0,
            payload: Bytes::from(vec![0xAB; self.record_bytes]),
        }
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::ycsb_default()
    }
}

/// A deterministic generator of [`Op`]s following a [`WorkloadSpec`].
#[derive(Debug, Clone)]
pub struct RequestStream {
    spec: WorkloadSpec,
    zipf: Zipfian,
    rng: StdRng,
    issued: u64,
    /// All writes share one refcounted payload of the right size: the
    /// protocols only care about length, and this keeps 100 K-request
    /// streams allocation-free.
    payload: Bytes,
}

impl RequestStream {
    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        self.issued += 1;
        let key = Key(match self.spec.dist {
            KeyDist::Zipfian => self.zipf.sample(&mut self.rng),
            KeyDist::Uniform => self.rng.gen_range(0..self.spec.records),
        });
        if self.rng.gen::<f64>() < self.spec.write_fraction {
            Op::Write {
                key,
                value: self.payload.clone(),
            }
        } else {
            Op::Read { key }
        }
    }

    /// Operations issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The spec this stream follows.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }
}

impl Iterator for RequestStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        (self.issued < self.spec.requests_per_node).then(|| self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let s = WorkloadSpec::ycsb_default();
        assert_eq!(s.records, 100_000);
        assert_eq!(s.record_bytes, 1024);
        assert_eq!(s.write_fraction, 0.5);
        assert_eq!(s.dist, KeyDist::Zipfian);
        assert_eq!(s.requests_per_node, 100_000);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let spec = WorkloadSpec::ycsb_default().with_records(100);
        let a: Vec<_> = spec.stream(5).take(50).collect();
        let b: Vec<_> = spec.stream(5).take(50).collect();
        let c: Vec<_> = spec.stream(6).take(50).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn write_fraction_is_respected() {
        for frac in [0.0, 0.2, 0.8, 1.0] {
            let spec = WorkloadSpec::ycsb_default()
                .with_records(100)
                .with_write_fraction(frac);
            let writes = spec.stream(1).take(5000).filter(|o| o.is_write()).count();
            let got = writes as f64 / 5000.0;
            assert!((got - frac).abs() < 0.03, "frac {frac}: got {got} writes");
        }
    }

    #[test]
    fn uniform_keys_cover_the_space() {
        let spec = WorkloadSpec::ycsb_default()
            .with_records(10)
            .with_dist(KeyDist::Uniform);
        let mut seen = std::collections::BTreeSet::new();
        for op in spec.stream(3).take(1000) {
            seen.insert(op.key());
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn payload_has_record_size() {
        let spec = WorkloadSpec::ycsb_default()
            .with_records(10)
            .with_write_fraction(1.0)
            .with_record_bytes(256);
        match spec.stream(1).next_op() {
            Op::Write { value, .. } => assert_eq!(value.len(), 256),
            Op::Read { .. } => panic!("write_fraction=1.0 produced a read"),
        }
    }

    #[test]
    fn iterator_stops_at_request_budget() {
        let spec = WorkloadSpec::ycsb_default()
            .with_records(10)
            .with_requests_per_node(7);
        assert_eq!(spec.stream(1).count(), 7);
    }
}
