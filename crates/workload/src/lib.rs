//! Workload generation for the MINOS experiments.
//!
//! * [`Zipfian`] — the YCSB zipfian key distribution (θ = 0.99), plus
//!   [`KeyDist::Uniform`] for the Figure 14 sensitivity sweep;
//! * [`WorkloadSpec`] / [`RequestStream`] — YCSB-style request streams
//!   with a configurable write fraction, database size, and record size
//!   (the paper's defaults: 100 000 records/node, 1 KB records, 50/50
//!   mix, 100 000 requests per node);
//! * [`deathstar`] — synthetic DeathStarBench traces (`Login` for the
//!   Figure 11 end-to-end experiment, plus `ComposePost` /
//!   `HomeTimeline` flows);
//! * [`openloop`] — seeded open-loop session generation: Poisson
//!   arrivals at a configurable offered load over many virtual
//!   sessions, with a scenario library (YCSB A–F, DeathStar compose
//!   flows, hot-key skew storms, a WAN geo profile) whose every entry
//!   doubles as a torture workload.
//!
//! # Example
//!
//! ```
//! use minos_workload::{KeyDist, Op, WorkloadSpec};
//!
//! let spec = WorkloadSpec::ycsb_default().with_write_fraction(0.2);
//! let mut stream = spec.stream(42);
//! let ops: Vec<Op> = (0..1000).map(|_| stream.next_op()).collect();
//! let writes = ops.iter().filter(|o| o.is_write()).count();
//! assert!((150..250).contains(&writes), "≈20% writes, got {writes}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deathstar;
pub mod openloop;
mod stream;
mod zipf;

pub use openloop::{Arrival, OpenLoopSpec, Scenario, SessionOp};
pub use stream::{KeyDist, Op, RequestStream, WorkloadSpec};
pub use zipf::Zipfian;
