//! §III-E recovery helpers: log shipping and volatile-state rebuild.
//!
//! When a failed node `F` rejoins, "a designated node sends to F a
//! message with the log of all the updates that have been committed since
//! the time when F stopped responding. F then applies the updates to its
//! local persistent and volatile state." These helpers are shared by
//! [`crate::MinosKv`] and the threaded runtime in `minos-cluster`.

use crate::durable::DurableState;
use minos_nvm::{LogEntry, Lsn};
use minos_types::{Key, Ts, Value};
use std::collections::BTreeMap;

/// The donor side: the log suffix to ship to a node that last saw the
/// donor's log at `rejoiner_watermark`.
#[must_use]
pub fn plan_shipment(donor: &DurableState, rejoiner_watermark: Lsn) -> Vec<LogEntry> {
    donor.entries_since(rejoiner_watermark)
}

/// The rejoiner side: reduces shipped entries to the newest version per
/// key — the records to install into the volatile replica after the
/// durable replay.
#[must_use]
pub fn rebuild_volatile(entries: &[LogEntry]) -> Vec<(Key, Ts, Value)> {
    let mut newest: BTreeMap<Key, (Ts, Value)> = BTreeMap::new();
    for e in entries {
        match newest.get(&e.key) {
            Some((cur, _)) if *cur >= e.ts => {}
            _ => {
                newest.insert(e.key, (e.ts, e.value.clone()));
            }
        }
    }
    newest.into_iter().map(|(k, (ts, v))| (k, ts, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_types::NodeId;

    fn ts(n: u16, v: u32) -> Ts {
        Ts::new(NodeId(n), v)
    }

    #[test]
    fn shipment_respects_watermark() {
        let mut donor = DurableState::new();
        donor.persist(Key(1), ts(0, 1), "a".into());
        donor.persist(Key(2), ts(0, 1), "b".into());
        donor.persist(Key(1), ts(0, 2), "c".into());
        assert_eq!(plan_shipment(&donor, 0).len(), 3);
        assert_eq!(plan_shipment(&donor, 2).len(), 1);
        assert!(plan_shipment(&donor, 99).is_empty());
    }

    #[test]
    fn rebuild_keeps_newest_per_key() {
        let mut donor = DurableState::new();
        donor.persist(Key(1), ts(0, 1), "old".into());
        donor.persist(Key(1), ts(1, 1), "tie-winner".into());
        donor.persist(Key(2), ts(0, 5), "only".into());
        let rebuilt = rebuild_volatile(&plan_shipment(&donor, 0));
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt[0], (Key(1), ts(1, 1), "tie-winner".into()));
        assert_eq!(rebuilt[1], (Key(2), ts(0, 5), "only".into()));
    }

    #[test]
    fn rebuild_of_empty_shipment_is_empty() {
        assert!(rebuild_volatile(&[]).is_empty());
    }
}
