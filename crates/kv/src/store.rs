//! The single-process replicated MINOS-KV store.

use crate::durable::DurableState;
use crate::hash_key;
use minos_core::runtime::{ActionSink, DispatchStats, Dispatcher, ShardRouter, Transport};
use minos_core::{DelayClass, EngineStats, Event, NodeEngine, ReqId};
use minos_types::{
    DdpModel, Key, Message, MinosError, NodeId, Result, ScopeId, ShardMap, Ts, Value,
};
use std::collections::VecDeque;

/// A replicated key-value store: N protocol engines + N durable states,
/// driven to quiescence after every client call.
///
/// This is the "real application" face of the workspace: examples and the
/// KV test-suite use it; the simulator and model checker drive the same
/// engines through their own harnesses.
///
/// Failure injection: [`MinosKv::fail_node`] partitions a node away
/// (messages to/from it are dropped, quorums shrink);
/// [`MinosKv::recover_node`] re-inserts it after shipping the durable-log
/// suffix from a designated surviving node, as §III-E prescribes.
#[derive(Debug, Clone)]
pub struct MinosKv {
    engines: Vec<NodeEngine>,
    dispatchers: Vec<Dispatcher>,
    durable: Vec<DurableState>,
    /// Per-node recovery cursor: the donor log position the node has
    /// replayed up to.
    failed: Vec<bool>,
    queue: VecDeque<(NodeId, Event)>,
    completions: Vec<(ReqId, KvOutcome)>,
    next_req: u64,
    model: DdpModel,
    /// Facade-level shard routing over the cluster placement map
    /// (identity when fully replicated). Scoped writes record their
    /// coordinator here so `[PERSIST]sc` can fan out to the touched
    /// shards.
    router: ShardRouter,
}

/// Result of a completed client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum KvOutcome {
    Write { ts: Ts, obsolete: bool },
    Read { value: Value, ts: Ts },
    PersistScope,
}

impl MinosKv {
    /// Creates an `n`-node store running `model`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, model: DdpModel) -> Self {
        MinosKv {
            engines: (0..n)
                .map(|i| NodeEngine::new(NodeId(i as u16), n, model))
                .collect(),
            dispatchers: vec![Dispatcher::new(); n],
            durable: (0..n).map(|_| DurableState::new()).collect(),
            failed: vec![false; n],
            queue: VecDeque::new(),
            completions: Vec::new(),
            next_req: 1,
            model,
            router: ShardRouter::new(None),
        }
    }

    /// Creates an `n`-node store with each record replicated on only `k`
    /// nodes — the partial-replication extension lifting the paper's
    /// "replicated in all the nodes" simplification, expressed as a
    /// `ShardMap::uniform(n, n, k)` ring over the shared placement map.
    /// Writes submitted at a non-replica are transparently redirected;
    /// reads at a non-replica are forwarded to a replica over the
    /// ReadReq/ReadResp sub-protocol.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds `n`, or if `model` is
    /// `<Lin, Scope>` (scope flush targets are undefined under the ring
    /// layout's overlapping groups; use [`MinosKv::with_shard_map`] with
    /// a disjoint map instead).
    #[must_use]
    pub fn with_replication(n: usize, k: u16, model: DdpModel) -> Self {
        assert!(k >= 1 && (k as usize) <= n, "bad factor {k}");
        assert!(
            model.persistency != minos_types::PersistencyModel::Scope,
            "partial replication is not supported under <Lin, Scope>; \
             use with_shard_map with a disjoint placement"
        );
        MinosKv::with_shard_map(ShardMap::uniform(n as u32, n, k), model)
    }

    /// Creates a store partitioned by `map`: one engine per node, each
    /// replicating only the shards the map places on it, with all client
    /// operations routed through the shared [`ShardRouter`] facade. All
    /// five persistency models are supported — scoped writes register
    /// their coordinator so [`MinosKv::persist_scope`] fans the flush out
    /// to exactly the touched shards.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty.
    #[must_use]
    pub fn with_shard_map(map: ShardMap, model: DdpModel) -> Self {
        let mut kv = MinosKv::new(map.n_nodes(), model);
        for e in &mut kv.engines {
            e.set_placement(Some(map.clone()));
        }
        kv.router = ShardRouter::new(Some(map));
        kv
    }

    /// The placement map partitioning this store, if any.
    #[must_use]
    pub fn placement(&self) -> Option<&ShardMap> {
        self.router.map()
    }

    /// The DDP model in force.
    #[must_use]
    pub fn model(&self) -> DdpModel {
        self.model
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.engines.len()
    }

    /// Writes `value` under `name`, coordinated by `node`. Blocks (drives
    /// the cluster) until the write's client response; returns its
    /// timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`MinosError::NodeFailed`] if `node` is marked failed.
    pub fn put(
        &mut self,
        node: NodeId,
        name: impl AsRef<[u8]>,
        value: impl Into<Value>,
    ) -> Result<Ts> {
        self.put_scoped(node, name, value, None)
    }

    /// [`MinosKv::put`] with a scope tag (`<Lin, Scope>` model).
    ///
    /// # Errors
    ///
    /// Returns [`MinosError::NodeFailed`] if `node` is marked failed.
    pub fn put_scoped(
        &mut self,
        node: NodeId,
        name: impl AsRef<[u8]>,
        value: impl Into<Value>,
        scope: Option<ScopeId>,
    ) -> Result<Ts> {
        self.check_alive(node)?;
        let req = self.fresh_req();
        let key = hash_key(name);
        // Facade routing: the write is coordinated by a replica of its
        // key's shard (the origin when it is one). The engine-level
        // redirect remains as a safety net for unrouted submissions.
        let coord = self.router.route_write(node, key, scope);
        self.queue.push_back((
            coord,
            Event::ClientWrite {
                key,
                value: value.into(),
                scope,
                req,
            },
        ));
        self.run();
        match self.take_completion(req) {
            Some(KvOutcome::Write { ts, .. }) => Ok(ts),
            _ => Err(MinosError::Shutdown),
        }
    }

    /// Reads `name` at `node` (always served locally, §III-D).
    ///
    /// Returns `None` for never-written records.
    ///
    /// # Errors
    ///
    /// Returns [`MinosError::NodeFailed`] if `node` is marked failed.
    pub fn get(&mut self, node: NodeId, name: impl AsRef<[u8]>) -> Result<Option<Value>> {
        self.check_alive(node)?;
        let req = self.fresh_req();
        let key = hash_key(name);
        self.queue.push_back((node, Event::ClientRead { key, req }));
        self.run();
        match self.take_completion(req) {
            Some(KvOutcome::Read { value, ts }) => {
                Ok((ts != Ts::zero() || !value.is_empty()).then_some(value))
            }
            _ => Err(MinosError::Shutdown),
        }
    }

    /// Ends scope `scope` at `node` with a `[PERSIST]sc` transaction.
    ///
    /// Sharded stores fan the flush out to every coordinator the scope's
    /// writes were routed to; a scope with no routed writes flushes
    /// trivially at the origin.
    ///
    /// # Errors
    ///
    /// Returns [`MinosError::NodeFailed`] if `node` is marked failed.
    pub fn persist_scope(&mut self, node: NodeId, scope: ScopeId) -> Result<()> {
        self.check_alive(node)?;
        let coords = self.router.scope_coordinators(node, scope);
        let reqs: Vec<ReqId> = coords.iter().map(|_| self.fresh_req()).collect();
        for (&coord, &req) in coords.iter().zip(&reqs) {
            self.queue
                .push_back((coord, Event::ClientPersistScope { scope, req }));
        }
        self.run();
        for req in reqs {
            match self.take_completion(req) {
                Some(KvOutcome::PersistScope) => {}
                _ => return Err(MinosError::Shutdown),
            }
        }
        Ok(())
    }

    /// The durable state of `node` (inspection, tests).
    #[must_use]
    pub fn durable(&self, node: NodeId) -> &DurableState {
        &self.durable[node.0 as usize]
    }

    /// Protocol statistics of `node`.
    #[must_use]
    pub fn stats(&self, node: NodeId) -> &EngineStats {
        self.engines[node.0 as usize].stats()
    }

    /// Dispatch statistics of `node` (actions interpreted by the shared
    /// runtime dispatcher on its behalf).
    #[must_use]
    pub fn dispatch_stats(&self, node: NodeId) -> &DispatchStats {
        self.dispatchers[node.0 as usize].stats()
    }

    /// Attaches observability `sinks` to every node's dispatcher,
    /// stamped by a deterministic cluster-global sequence clock (see
    /// [`minos_core::obs`]).
    pub fn attach_tracer(&mut self, sinks: Vec<minos_core::obs::SharedSink>) {
        let clock = minos_core::obs::TraceClock::sequence();
        for (i, d) in self.dispatchers.iter_mut().enumerate() {
            d.set_tracer(Some(minos_core::obs::Tracer::new(
                NodeId(i as u16),
                clock.clone(),
                sinks.clone(),
            )));
        }
    }

    /// The protocol engine of `node` (inspection, tests).
    #[must_use]
    pub fn engine(&self, node: NodeId) -> &NodeEngine {
        &self.engines[node.0 as usize]
    }

    /// Fails `node`: its messages are dropped and every surviving node
    /// excludes it from acknowledgment quorums.
    ///
    /// # Panics
    ///
    /// Panics if it would leave the cluster empty.
    pub fn fail_node(&mut self, node: NodeId) {
        assert!(
            self.failed.iter().filter(|f| !**f).count() > 1,
            "cannot fail the last live node"
        );
        self.failed[node.0 as usize] = true;
        for e in &mut self.engines {
            if e.node() != node {
                e.mark_failed(node);
            }
        }
        // Drop queued traffic involving the failed node.
        self.queue.retain(|(to, ev)| {
            *to != node && !matches!(ev, Event::Message { from, .. } if *from == node)
        });
        self.run();
    }

    /// Recovers `node` per §III-E: `donor` ships the durable-log suffix;
    /// the rejoining node replays it (obsoleteness-checked) into durable
    /// state and reloads its volatile replica from the result, then every
    /// node re-admits it.
    ///
    /// # Panics
    ///
    /// Panics if `donor` is failed or `node` is not failed.
    pub fn recover_node(&mut self, node: NodeId, donor: NodeId) {
        assert!(self.failed[node.0 as usize], "{node} is not failed");
        assert!(!self.failed[donor.0 as usize], "donor {donor} is failed");

        // Ship everything the rejoining node is missing. The donor sends
        // its whole live log suffix from the rejoiner's high-water mark;
        // obsolete entries are skipped during replay.
        let from = 0; // conservative: replay full log (idempotent)
        let entries = self.durable[donor.0 as usize].entries_since(from);
        let ni = node.0 as usize;
        self.durable[ni].replay(&entries);

        // The crash wiped volatile state: rebuild the engine so no stale
        // transaction or lock survives (re-installing the cluster
        // placement), then re-exclude any other nodes that are still
        // failed.
        self.engines[ni] = NodeEngine::new(node, self.engines.len(), self.model);
        self.engines[ni].set_placement(self.router.map().cloned());
        for (i, f) in self.failed.iter().enumerate() {
            if *f && i != ni {
                self.engines[ni].mark_failed(NodeId(i as u16));
            }
        }

        // Reload the volatile replica from the recovered durable state:
        // these updates are already globally consistent and durable, so
        // they are installed directly (no protocol traffic).
        let records: Vec<(Key, Ts, Value)> = self.durable[ni]
            .iter_durable()
            .map(|(k, (ts, v))| (*k, *ts, v.clone()))
            .collect();
        for (key, ts, value) in records {
            self.engines[ni].install_recovered(key, ts, value);
        }

        self.failed[ni] = false;
        for e in &mut self.engines {
            if e.node() != node {
                e.mark_recovered(node);
            }
        }
        self.run();
    }

    fn check_alive(&self, node: NodeId) -> Result<()> {
        if self
            .failed
            .get(node.0 as usize)
            .copied()
            .ok_or(MinosError::UnknownNode(node))?
        {
            Err(MinosError::NodeFailed(node))
        } else {
            Ok(())
        }
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    fn take_completion(&mut self, req: ReqId) -> Option<KvOutcome> {
        let idx = self.completions.iter().position(|(r, _)| *r == req)?;
        Some(self.completions.swap_remove(idx).1)
    }

    fn run(&mut self) {
        let mut steps = 0u64;
        while let Some((node, ev)) = self.queue.pop_front() {
            steps += 1;
            assert!(steps < 10_000_000, "MINOS-KV cluster did not quiesce");
            if self.failed[node.0 as usize] {
                continue;
            }
            if let Event::Message { from, .. } = &ev {
                if self.failed[from.0 as usize] {
                    continue;
                }
            }
            let ni = node.0 as usize;
            let mut handler = KvHandler {
                node,
                durable: &mut self.durable[ni],
                queue: &mut self.queue,
                completions: &mut self.completions,
            };
            self.dispatchers[ni].dispatch(&mut self.engines[ni], ev, &mut handler);
        }
    }
}

/// Dispatch handler for the single-process store: messages hop queues
/// synchronously, persists apply immediately to the node's durable state.
struct KvHandler<'a> {
    node: NodeId,
    durable: &'a mut DurableState,
    queue: &'a mut VecDeque<(NodeId, Event)>,
    completions: &'a mut Vec<(ReqId, KvOutcome)>,
}

impl Transport for KvHandler<'_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        self.queue.push_back((
            to,
            Event::Message {
                from: self.node,
                msg,
            },
        ));
    }
}

impl ActionSink for KvHandler<'_> {
    fn persist(&mut self, key: Key, ts: Ts, value: Value, _background: bool) {
        // Real durable effect: log append + durable-db apply, then the
        // completion event the engine's gates await.
        self.durable.persist(key, ts, value);
        self.queue
            .push_back((self.node, Event::PersistDone { key, ts }));
    }

    fn redirect(&mut self, to: NodeId, event: Event) {
        self.queue.push_back((to, event));
    }

    fn defer(&mut self, event: Event, _class: DelayClass) {
        self.queue.push_back((self.node, event));
    }

    fn write_done(&mut self, req: ReqId, _key: Key, ts: Ts, obsolete: bool) {
        self.completions
            .push((req, KvOutcome::Write { ts, obsolete }));
    }

    fn read_done(&mut self, req: ReqId, _key: Key, value: Value, ts: Ts) {
        self.completions.push((req, KvOutcome::Read { value, ts }));
    }

    fn persist_scope_done(&mut self, req: ReqId, _scope: ScopeId) {
        self.completions.push((req, KvOutcome::PersistScope));
    }
}
