//! One node's non-volatile state.

use minos_nvm::{DurableLog, LogEntry, Lsn, NvmDatabase, NvmDevice};
use minos_types::{Key, Ts, Value};
use serde::{Deserialize, Serialize};

/// The durable half of one MINOS-KV node: emulated device + persist log +
/// durable database.
///
/// Protocol persists append to the log first (out-of-order appends are
/// fine, §III-B); the log is applied to the database eagerly here, with
/// the obsoleteness check `minos-nvm` enforces.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DurableState {
    device: NvmDevice,
    log: DurableLog,
    db: NvmDatabase,
}

impl DurableState {
    /// Fresh durable state with the paper's default NVM latency.
    #[must_use]
    pub fn new() -> Self {
        DurableState::default()
    }

    /// Durable state with a custom persist latency (ns per KB).
    #[must_use]
    pub fn with_persist_latency(ns_per_kb: u64) -> Self {
        DurableState {
            device: NvmDevice::with_latency(ns_per_kb),
            ..DurableState::default()
        }
    }

    /// Persists one update: books device time, appends to the log, applies
    /// to the durable database. Returns the entry's LSN.
    pub fn persist(&mut self, key: Key, ts: Ts, value: Value) -> Lsn {
        self.device.persist(value.len() as u64);
        let lsn = self.log.append(key, ts, value.clone());
        self.db.apply(LogEntry {
            lsn,
            key,
            ts,
            value,
        });
        lsn
    }

    /// The durable version/value of `key`.
    #[must_use]
    pub fn durable(&self, key: Key) -> Option<&(Ts, Value)> {
        self.db.get(key)
    }

    /// Next LSN to be written (the recovery high-water mark).
    #[must_use]
    pub fn head(&self) -> Lsn {
        self.log.head()
    }

    /// Log entries at or after `from` — the §III-E recovery shipping unit.
    #[must_use]
    pub fn entries_since(&self, from: Lsn) -> Vec<LogEntry> {
        self.log.entries_since(from)
    }

    /// Replays shipped entries into the durable database (obsolete entries
    /// skipped) and re-logs them locally. Returns how many were applied.
    pub fn replay(&mut self, entries: &[LogEntry]) -> usize {
        let mut applied = 0;
        for e in entries {
            let lsn = self.log.append(e.key, e.ts, e.value.clone());
            if self.db.apply(LogEntry {
                lsn,
                key: e.key,
                ts: e.ts,
                value: e.value.clone(),
            }) {
                applied += 1;
            }
        }
        applied
    }

    /// The rejoin catch-up summary: the newest durable version per key.
    /// A rejoining node sends this to its donor so the donor can ship
    /// exactly the versions the rejoiner missed — LSNs are per-node and
    /// not comparable across logs, so catch-up is keyed on versions.
    #[must_use]
    pub fn summary(&self) -> Vec<(Key, Ts)> {
        self.db.iter().map(|(k, (ts, _))| (*k, *ts)).collect()
    }

    /// The donor side of rejoin catch-up: durable records strictly newer
    /// than the rejoiner's [`DurableState::summary`] (or for keys the
    /// rejoiner has never seen). Returned as log entries with this log's
    /// LSNs; [`DurableState::replay`] re-assigns local LSNs on install.
    #[must_use]
    pub fn delta_against(&self, have: &[(Key, Ts)]) -> Vec<LogEntry> {
        let known: std::collections::HashMap<Key, Ts> = have.iter().copied().collect();
        self.db
            .iter()
            .filter(|(k, (ts, _))| known.get(k).is_none_or(|seen| ts > seen))
            .map(|(k, (ts, v))| LogEntry {
                lsn: 0, // re-assigned by the receiver's replay
                key: *k,
                ts: *ts,
                value: v.clone(),
            })
            .collect()
    }

    /// The emulated device (latency/accounting queries).
    #[must_use]
    pub fn device(&self) -> &NvmDevice {
        &self.device
    }

    /// Number of durable records.
    #[must_use]
    pub fn durable_records(&self) -> usize {
        self.db.len()
    }

    /// Iterates over durable records.
    pub fn iter_durable(&self) -> impl Iterator<Item = (&Key, &(Ts, Value))> {
        self.db.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_types::NodeId;

    fn ts(n: u16, v: u32) -> Ts {
        Ts::new(NodeId(n), v)
    }

    #[test]
    fn persist_applies_to_db() {
        let mut d = DurableState::new();
        d.persist(Key(1), ts(0, 1), "v".into());
        assert_eq!(d.durable(Key(1)).unwrap().1, "v");
        assert_eq!(d.device().ops(), 1);
    }

    #[test]
    fn out_of_order_persists_keep_newest() {
        let mut d = DurableState::new();
        d.persist(Key(1), ts(0, 5), "newer".into());
        d.persist(Key(1), ts(0, 3), "older".into());
        assert_eq!(d.durable(Key(1)).unwrap().1, "newer");
        assert_eq!(d.head(), 2, "both logged");
    }

    #[test]
    fn delta_ships_exactly_the_missed_versions() {
        let mut donor = DurableState::new();
        donor.persist(Key(1), ts(0, 2), "v2".into());
        donor.persist(Key(2), ts(1, 1), "w".into());
        donor.persist(Key(3), ts(0, 4), "x".into());

        let mut rejoiner = DurableState::new();
        rejoiner.persist(Key(1), ts(0, 1), "v1".into()); // stale
        rejoiner.persist(Key(3), ts(0, 4), "x".into()); // current

        let delta = donor.delta_against(&rejoiner.summary());
        let keys: Vec<Key> = delta.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![Key(1), Key(2)], "stale + unseen only");
        rejoiner.replay(&delta);
        assert_eq!(rejoiner.durable(Key(1)).unwrap().0, ts(0, 2));
        assert_eq!(rejoiner.durable(Key(2)).unwrap().1, "w");
        // Idempotent: a caught-up summary yields an empty delta.
        assert!(donor.delta_against(&rejoiner.summary()).is_empty());
    }

    #[test]
    fn replay_skips_obsolete() {
        let mut a = DurableState::new();
        a.persist(Key(1), ts(0, 1), "v1".into());
        a.persist(Key(1), ts(0, 2), "v2".into());
        a.persist(Key(2), ts(1, 1), "w".into());

        let mut b = DurableState::new();
        b.persist(Key(1), ts(0, 2), "v2".into()); // already has the newest
        let applied = b.replay(&a.entries_since(0));
        assert_eq!(applied, 1, "only Key(2) was new");
        assert_eq!(b.durable(Key(2)).unwrap().1, "w");
        assert_eq!(b.durable(Key(1)).unwrap().1, "v2");
    }
}
