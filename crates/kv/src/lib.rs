//! MINOS-KV: the replicated key-value store of §VII.
//!
//! The paper implements its own KV store ("to support our proposed
//! metadata format … we implement our own key-value store, named
//! MINOS-KV"), backed by a hashtable, replicated on every node, driven by
//! the MINOS protocols. This crate provides:
//!
//! * [`DurableState`] — one node's non-volatile half: the emulated NVM
//!   device, the append-only persist log, and the durable database the
//!   log is applied to;
//! * [`MinosKv`] — a single-process replicated store: `put`/`get`/
//!   `persist_scope` against an N-node cluster of protocol engines, with
//!   real durable state per node;
//! * [`recovery`] — the §III-E log-shipping recovery: a designated node
//!   ships the committed log suffix to a rejoining node, which replays it
//!   into volatile and durable state.
//!
//! # Example
//!
//! ```
//! use minos_kv::MinosKv;
//! use minos_types::{DdpModel, NodeId, PersistencyModel};
//!
//! let mut kv = MinosKv::new(3, DdpModel::lin(PersistencyModel::Synchronous));
//! kv.put(NodeId(0), "user:7", "alice")?;
//! // Any replica serves the read locally.
//! assert_eq!(kv.get(NodeId(2), "user:7")?.unwrap(), "alice");
//! # Ok::<(), minos_types::MinosError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
pub mod recovery;
mod store;

pub use durable::DurableState;
pub use store::MinosKv;

use minos_types::Key;

/// Hashes an arbitrary byte-string key into the fixed-width [`Key`] used
/// on the wire (FNV-1a; MINOS-KV's hashtable backend).
#[must_use]
pub fn hash_key(name: impl AsRef<[u8]>) -> Key {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in name.as_ref() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    Key(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_key_is_stable_and_spreads() {
        assert_eq!(hash_key("a"), hash_key("a"));
        assert_ne!(hash_key("a"), hash_key("b"));
        assert_ne!(hash_key("ab"), hash_key("ba"));
    }
}
