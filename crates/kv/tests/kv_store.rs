//! Integration tests for MINOS-KV: the client-facing store semantics,
//! durability, and §III-E failure/recovery.

use minos_kv::{hash_key, recovery, MinosKv};
use minos_types::{DdpModel, MinosError, NodeId, PersistencyModel, ScopeId, Ts};

fn synch() -> DdpModel {
    DdpModel::lin(PersistencyModel::Synchronous)
}

#[test]
fn put_then_get_from_every_replica() {
    for model in DdpModel::all_lin() {
        if model.persistency == PersistencyModel::Scope {
            continue; // covered by scoped tests below
        }
        let mut kv = MinosKv::new(5, model);
        kv.put(NodeId(0), "k", "v").unwrap();
        for n in 0..5 {
            assert_eq!(
                kv.get(NodeId(n), "k").unwrap().unwrap(),
                "v",
                "{model} node {n}"
            );
        }
    }
}

#[test]
fn get_of_absent_key_is_none() {
    let mut kv = MinosKv::new(3, synch());
    assert_eq!(kv.get(NodeId(1), "nothing").unwrap(), None);
}

#[test]
fn overwrites_are_visible_everywhere() {
    let mut kv = MinosKv::new(3, synch());
    kv.put(NodeId(0), "k", "v1").unwrap();
    kv.put(NodeId(1), "k", "v2").unwrap();
    kv.put(NodeId(2), "k", "v3").unwrap();
    for n in 0..3 {
        assert_eq!(kv.get(NodeId(n), "k").unwrap().unwrap(), "v3");
    }
}

#[test]
fn put_returns_increasing_timestamps() {
    let mut kv = MinosKv::new(2, synch());
    let t1 = kv.put(NodeId(0), "k", "a").unwrap();
    let t2 = kv.put(NodeId(1), "k", "b").unwrap();
    let t3 = kv.put(NodeId(0), "k", "c").unwrap();
    assert!(t2 > t1);
    assert!(t3 > t2);
}

#[test]
fn synch_puts_are_durable_on_every_node() {
    let mut kv = MinosKv::new(3, synch());
    let ts = kv.put(NodeId(0), "k", "v").unwrap();
    let key = hash_key("k");
    for n in 0..3 {
        let (dts, dval) = kv.durable(NodeId(n)).durable(key).unwrap();
        assert_eq!(*dts, ts, "node {n}");
        assert_eq!(dval, "v", "node {n}");
    }
}

#[test]
fn eventual_puts_complete_then_persist_in_background() {
    let mut kv = MinosKv::new(3, DdpModel::lin(PersistencyModel::Eventual));
    kv.put(NodeId(0), "k", "v").unwrap();
    // The facade drives the cluster to quiescence, so background persists
    // have landed by the time put() returns.
    let key = hash_key("k");
    for n in 0..3 {
        assert!(kv.durable(NodeId(n)).durable(key).is_some(), "node {n}");
    }
}

#[test]
fn scoped_writes_flush_with_persist_scope() {
    let mut kv = MinosKv::new(3, DdpModel::lin(PersistencyModel::Scope));
    let sc = ScopeId(1);
    kv.put_scoped(NodeId(0), "a", "1", Some(sc)).unwrap();
    kv.put_scoped(NodeId(0), "b", "2", Some(sc)).unwrap();
    kv.persist_scope(NodeId(0), sc).unwrap();
    for n in 0..3 {
        let meta = kv.engine(NodeId(n)).record_meta(hash_key("a"));
        assert!(
            meta.glb_durable_ts > Ts::zero(),
            "node {n}: scope flush must raise glb_durableTS"
        );
    }
}

#[test]
fn failed_node_rejects_requests() {
    let mut kv = MinosKv::new(3, synch());
    kv.put(NodeId(0), "k", "v").unwrap();
    kv.fail_node(NodeId(2));
    assert_eq!(
        kv.put(NodeId(2), "k", "x").unwrap_err(),
        MinosError::NodeFailed(NodeId(2))
    );
    assert_eq!(
        kv.get(NodeId(2), "k").unwrap_err(),
        MinosError::NodeFailed(NodeId(2))
    );
}

#[test]
fn cluster_survives_a_node_failure() {
    let mut kv = MinosKv::new(3, synch());
    kv.put(NodeId(0), "k", "before").unwrap();
    kv.fail_node(NodeId(2));
    // Quorums shrink: the write completes with one follower.
    kv.put(NodeId(0), "k", "during").unwrap();
    assert_eq!(kv.get(NodeId(1), "k").unwrap().unwrap(), "during");
}

#[test]
fn recovery_ships_missed_updates() {
    let mut kv = MinosKv::new(3, synch());
    kv.put(NodeId(0), "a", "1").unwrap();
    kv.fail_node(NodeId(2));
    kv.put(NodeId(0), "a", "2").unwrap();
    kv.put(NodeId(1), "b", "3").unwrap();
    kv.recover_node(NodeId(2), NodeId(0));
    // The rejoined node serves reads with the post-failure state.
    assert_eq!(kv.get(NodeId(2), "a").unwrap().unwrap(), "2");
    assert_eq!(kv.get(NodeId(2), "b").unwrap().unwrap(), "3");
    // And participates in new writes again.
    kv.put(NodeId(2), "c", "4").unwrap();
    assert_eq!(kv.get(NodeId(0), "c").unwrap().unwrap(), "4");
}

#[test]
fn recovery_does_not_resurrect_stale_values() {
    let mut kv = MinosKv::new(3, synch());
    kv.put(NodeId(0), "k", "old").unwrap();
    kv.fail_node(NodeId(2));
    kv.put(NodeId(0), "k", "new").unwrap();
    kv.recover_node(NodeId(2), NodeId(1));
    assert_eq!(kv.get(NodeId(2), "k").unwrap().unwrap(), "new");
    let key = hash_key("k");
    let (ts, val) = kv.durable(NodeId(2)).durable(key).unwrap().clone();
    assert_eq!(val, "new");
    assert_eq!(ts.version, 2);
}

#[test]
fn recovery_module_round_trip() {
    let mut kv = MinosKv::new(2, synch());
    kv.put(NodeId(0), "x", "1").unwrap();
    kv.put(NodeId(1), "x", "2").unwrap();
    kv.put(NodeId(0), "y", "3").unwrap();
    let shipment = recovery::plan_shipment(kv.durable(NodeId(0)), 0);
    let rebuilt = recovery::rebuild_volatile(&shipment);
    assert_eq!(rebuilt.len(), 2);
    let x = rebuilt
        .iter()
        .find(|(k, _, _)| *k == hash_key("x"))
        .unwrap();
    assert_eq!(x.2, "2", "newest version wins");
}

#[test]
fn many_keys_many_nodes_stress() {
    let mut kv = MinosKv::new(4, synch());
    for i in 0..50u32 {
        let node = NodeId((i % 4) as u16);
        kv.put(node, format!("key{}", i % 7), format!("val{i}"))
            .unwrap();
    }
    for i in 0..7u32 {
        let name = format!("key{i}");
        let v0 = kv.get(NodeId(0), &name).unwrap();
        for n in 1..4 {
            assert_eq!(kv.get(NodeId(n), &name).unwrap(), v0, "{name} node {n}");
        }
    }
}

#[test]
fn stats_reflect_traffic() {
    let mut kv = MinosKv::new(3, synch());
    kv.put(NodeId(0), "k", "v").unwrap();
    let s = kv.stats(NodeId(0));
    assert_eq!(s.writes, 1);
    assert_eq!(s.invs_sent, 2);
    assert!(kv.stats(NodeId(1)).acks_sent >= 1);
}
