//! Crash-point torture for §III-E recovery: the durable log is cut at
//! every byte offset — entry boundaries and torn mid-entry writes — and
//! the rejoiner must reconverge with the donor from whatever clean
//! prefix survived, via the same `plan_shipment`/`rebuild_volatile`
//! path the live runtimes use.

use minos_kv::recovery::{plan_shipment, rebuild_volatile};
use minos_kv::DurableState;
use minos_nvm::log::{decode_entries, encode_entries, DecodeOutcome};
use minos_types::{Key, NodeId, Ts, Value};
use std::collections::BTreeMap;

fn ts(n: u16, v: u32) -> Ts {
    Ts::new(NodeId(n), v)
}

/// A donor with interleaved keys, out-of-order timestamps (obsolete
/// entries land in the log after their superseders, §III-B), and value
/// sizes from empty to multi-frame-dominating.
fn donor_state() -> DurableState {
    let mut donor = DurableState::new();
    donor.persist(Key(1), ts(0, 1), Value::from("first"));
    donor.persist(Key(2), ts(1, 1), Value::from(""));
    donor.persist(Key(1), ts(2, 3), Value::from("newest-of-k1"));
    donor.persist(Key(1), ts(1, 2), Value::from("obsolete-arrives-late"));
    donor.persist(Key(3), ts(2, 2), Value::from(vec![0xabu8; 100]));
    donor.persist(Key(2), ts(0, 4), Value::from("k2-final"));
    donor
}

fn durable_map(state: &DurableState) -> BTreeMap<Key, (Ts, Value)> {
    state
        .iter_durable()
        .map(|(k, (t, v))| (*k, (*t, v.clone())))
        .collect()
}

/// Recover a rejoiner from a truncated log image: decode the clean
/// prefix, replay it, then ship the donor's suffix from the rejoiner's
/// watermark — exactly the live `recover_node` path, but with the NVM
/// image cut at an arbitrary byte.
fn recover_from_cut(donor: &DurableState, bytes: &[u8]) -> DurableState {
    let (prefix, _) = decode_entries(bytes);
    let mut rejoiner = DurableState::new();
    rejoiner.replay(&prefix);
    let shipment = plan_shipment(donor, rejoiner.head());
    rejoiner.replay(&shipment);
    rejoiner
}

#[test]
fn recovery_reconverges_from_every_truncation_point() {
    let donor = donor_state();
    let full = donor.entries_since(0);
    let bytes = encode_entries(&full);
    for cut in 0..=bytes.len() {
        let (prefix, _) = decode_entries(&bytes[..cut]);
        assert_eq!(
            prefix[..],
            full[..prefix.len()],
            "cut at {cut}: decoded prefix diverges from the original log"
        );
        let rejoiner = recover_from_cut(&donor, &bytes[..cut]);
        assert_eq!(
            durable_map(&rejoiner),
            durable_map(&donor),
            "cut at {cut}: durable states did not reconverge"
        );
        assert_eq!(rejoiner.head(), donor.head(), "cut at {cut}: head mismatch");
    }
}

#[test]
fn recovery_reconverges_from_torn_writes() {
    let donor = donor_state();
    let full = donor.entries_since(0);
    let bytes = encode_entries(&full);
    // Flip one bit at a spread of offsets: frame headers, payloads,
    // checksums. The decoder must stop at the first bad frame and the
    // shipment must still reconverge the rejoiner.
    for at in (0..bytes.len()).step_by(7) {
        let mut torn = bytes.clone();
        torn[at] ^= 0x10;
        let (prefix, _) = decode_entries(&torn);
        assert!(
            prefix.len() <= full.len() && prefix[..] == full[..prefix.len()],
            "bit flip at {at}: decoder surfaced corrupt entries"
        );
        let rejoiner = recover_from_cut(&donor, &torn);
        assert_eq!(
            durable_map(&rejoiner),
            durable_map(&donor),
            "bit flip at {at}: durable states did not reconverge"
        );
    }
}

#[test]
fn volatile_rebuild_matches_durable_newest_at_every_cut() {
    let donor = donor_state();
    let full = donor.entries_since(0);
    let bytes = encode_entries(&full);
    for cut in 0..=bytes.len() {
        let rejoiner = recover_from_cut(&donor, &bytes[..cut]);
        let rebuilt = rebuild_volatile(&rejoiner.entries_since(0));
        let durable = durable_map(&rejoiner);
        assert_eq!(rebuilt.len(), durable.len(), "cut at {cut}");
        for (key, rts, rv) in rebuilt {
            let (dts, dv) = &durable[&key];
            assert_eq!((rts, &rv), (*dts, dv), "cut at {cut}, {key}");
        }
    }
}

#[test]
fn full_image_round_trips_completely() {
    let donor = donor_state();
    let bytes = encode_entries(&donor.entries_since(0));
    let (entries, outcome) = decode_entries(&bytes);
    assert_eq!(outcome, DecodeOutcome::Complete);
    assert_eq!(entries, donor.entries_since(0));
}
