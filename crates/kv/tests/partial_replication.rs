//! The partial-replication extension: records live on `k` of `n` nodes;
//! writes redirect to replicas, reads forward over ReadReq/ReadResp.

use minos_kv::{hash_key, MinosKv};
use minos_types::{DdpModel, NodeId, PersistencyModel, Ts};

fn synch() -> DdpModel {
    DdpModel::lin(PersistencyModel::Synchronous)
}

#[test]
fn put_get_work_from_any_node() {
    // 5 nodes, 2 replicas per record: every node can still serve every
    // client request (redirect/forward under the hood).
    let mut kv = MinosKv::with_replication(5, 2, synch());
    kv.put(NodeId(3), "alpha", "1").unwrap();
    for n in 0..5 {
        assert_eq!(
            kv.get(NodeId(n), "alpha").unwrap().unwrap(),
            "1",
            "node {n}"
        );
    }
}

#[test]
fn only_replicas_hold_the_data() {
    let mut kv = MinosKv::with_replication(5, 2, synch());
    kv.put(NodeId(0), "k", "v").unwrap();
    let key = hash_key("k");
    let replicas = kv.engine(NodeId(0)).replicas_of(key);
    assert_eq!(replicas.len(), 2);
    let mut holders = 0;
    for n in 0..5 {
        let node = NodeId(n);
        let has = kv.engine(node).record_value(key).is_some_and(|v| v == "v");
        assert_eq!(
            has,
            replicas.contains(&node),
            "node {node}: data placement mismatch"
        );
        holders += usize::from(has);
    }
    assert_eq!(holders, 2, "exactly k replicas hold the record");
}

#[test]
fn durability_follows_placement() {
    let mut kv = MinosKv::with_replication(4, 2, synch());
    let ts = kv.put(NodeId(1), "k", "v").unwrap();
    let key = hash_key("k");
    let replicas = kv.engine(NodeId(0)).replicas_of(key);
    for n in 0..4 {
        let node = NodeId(n);
        let durable = kv.durable(node).durable(key).cloned();
        if replicas.contains(&node) {
            assert_eq!(durable, Some((ts, "v".into())), "replica {node}");
        } else {
            assert_eq!(durable, None, "non-replica {node} persisted data");
        }
    }
}

#[test]
fn overwrites_from_different_nodes_converge() {
    let mut kv = MinosKv::with_replication(5, 3, synch());
    for i in 0..12u32 {
        kv.put(NodeId((i % 5) as u16), "hot", format!("v{i}"))
            .unwrap();
    }
    for n in 0..5 {
        assert_eq!(
            kv.get(NodeId(n), "hot").unwrap().unwrap(),
            "v11",
            "node {n}"
        );
    }
}

#[test]
fn replication_factor_one_is_single_copy() {
    let mut kv = MinosKv::with_replication(3, 1, synch());
    let ts = kv.put(NodeId(0), "solo", "x").unwrap();
    // With one replica there are no followers: the write's version is 1
    // and no ACK traffic occurred.
    assert_eq!(ts.version, 1);
    assert_eq!(kv.get(NodeId(2), "solo").unwrap().unwrap(), "x");
    let key = hash_key("solo");
    let replica = kv.engine(NodeId(0)).replicas_of(key)[0];
    assert_eq!(kv.stats(replica).invs_sent, 0, "no fan-out for k=1");
}

#[test]
fn full_replication_still_default() {
    let mut kv = MinosKv::new(3, synch());
    kv.put(NodeId(0), "k", "v").unwrap();
    let key = hash_key("k");
    for n in 0..3 {
        assert!(kv.engine(NodeId(n)).record_value(key).is_some());
        assert!(kv.engine(NodeId(n)).is_replica(key));
    }
}

#[test]
fn reads_at_non_replicas_see_latest_write() {
    // Lin must survive forwarding: write at a replica, read immediately
    // from a non-replica.
    let mut kv = MinosKv::with_replication(5, 2, synch());
    let key = hash_key("seq");
    let replicas = kv.engine(NodeId(0)).replicas_of(key);
    let non_replica = (0..5).map(NodeId).find(|n| !replicas.contains(n)).unwrap();
    for i in 0..8u32 {
        kv.put(replicas[i as usize % 2], "seq", format!("{i}"))
            .unwrap();
        assert_eq!(
            kv.get(non_replica, "seq").unwrap().unwrap(),
            format!("{i}"),
            "stale forwarded read after write {i}"
        );
    }
}

#[test]
fn many_keys_spread_across_the_ring() {
    let kv = MinosKv::with_replication(5, 2, synch());
    let mut per_node = [0usize; 5];
    for i in 0..100u64 {
        for r in kv.engine(NodeId(0)).replicas_of(minos_types::Key(i)) {
            per_node[r.0 as usize] += 1;
        }
    }
    // 100 keys × 2 replicas over 5 nodes ≈ 40 per node with ring placement.
    for (n, &c) in per_node.iter().enumerate() {
        assert!((30..=50).contains(&c), "node {n} holds {c} replicas");
    }
}

#[test]
fn timestamps_still_strictly_increase_per_key() {
    let mut kv = MinosKv::with_replication(4, 2, synch());
    let mut last = Ts::zero();
    for i in 0..6u32 {
        let ts = kv
            .put(NodeId((i % 4) as u16), "mono", format!("{i}"))
            .unwrap();
        assert!(ts > last, "ts regression: {ts} after {last}");
        last = ts;
    }
}

#[test]
#[should_panic(expected = "partial replication is not supported under <Lin, Scope>")]
fn scope_model_rejects_partial_replication() {
    let _ = MinosKv::with_replication(3, 2, DdpModel::lin(PersistencyModel::Scope));
}

#[test]
fn shard_map_store_partitions_and_routes() {
    use minos_types::ShardMap;
    // 2 shards × 2 replicas over 4 nodes: groups {0,1} {2,3}.
    let map = ShardMap::uniform(2, 4, 2);
    for pm in [
        PersistencyModel::Synchronous,
        PersistencyModel::Strict,
        PersistencyModel::ReadEnforced,
        PersistencyModel::Eventual,
    ] {
        let mut kv = MinosKv::with_shard_map(map.clone(), DdpModel::lin(pm));
        let names = ["a", "b", "c", "d", "e", "f"];
        for name in names {
            kv.put(NodeId(0), name, format!("v-{name}")).unwrap();
        }
        for name in names {
            // Served from any origin, replica or not.
            for n in 0..4 {
                assert_eq!(
                    kv.get(NodeId(n), name).unwrap().unwrap(),
                    format!("v-{name}"),
                    "[{pm:?}] {name} via node {n}"
                );
            }
            // Only the shard's replicas hold the record.
            let key = hash_key(name);
            for n in 0..4u16 {
                assert_eq!(
                    kv.engine(NodeId(n)).record_value(key).is_some(),
                    map.is_replica(NodeId(n), key),
                    "[{pm:?}] {name} on node {n}"
                );
            }
        }
    }
}

#[test]
fn shard_map_store_supports_scope_flushes() {
    use minos_types::{ScopeId, ShardMap};
    let map = ShardMap::uniform(2, 4, 2);
    let mut kv = MinosKv::with_shard_map(map.clone(), DdpModel::lin(PersistencyModel::Scope));
    let sc = ScopeId(4);
    // Find two names landing on different shards.
    let on_shard = |s: u32| {
        ["p", "q", "r", "s", "t", "u"]
            .into_iter()
            .find(|n| map.shard_of(hash_key(n)).0 == s)
            .expect("a probe name per shard")
    };
    let (n0, n1) = (on_shard(0), on_shard(1));
    kv.put_scoped(NodeId(0), n0, "x", Some(sc)).unwrap();
    kv.put_scoped(NodeId(0), n1, "y", Some(sc)).unwrap();
    kv.persist_scope(NodeId(0), sc).unwrap();
    // The cross-shard flush persisted both records in their own groups.
    for (name, val) in [(n0, "x"), (n1, "y")] {
        let key = hash_key(name);
        let durable = map
            .replicas_of_key(key)
            .iter()
            .any(|&r| kv.durable(r).durable(key).is_some_and(|(_, v)| v == val));
        assert!(durable, "scoped {name} not durable in its group");
    }
}

#[test]
fn shard_map_recovery_reinstalls_placement() {
    use minos_types::ShardMap;
    let map = ShardMap::uniform(2, 4, 2);
    let mut kv = MinosKv::with_shard_map(map.clone(), synch());
    let name = "rec";
    let key = hash_key(name);
    kv.put(NodeId(0), name, "v1").unwrap();
    let replicas = map.replicas_of_key(key).to_vec();
    let crash = replicas[0];
    let donor = replicas[1];
    kv.fail_node(crash);
    kv.recover_node(crash, donor);
    // The rebuilt engine still honors the shard map: it holds the key it
    // replicates and reports the same replica set.
    assert_eq!(kv.engine(crash).replicas_of(key), replicas);
    assert!(kv.engine(crash).record_value(key).is_some());
    assert_eq!(kv.get(crash, name).unwrap().unwrap(), "v1");
}
