//! Quickstart: a replicated key-value store under every DDP model.
//!
//! Run with:
//! ```text
//! cargo run -p minos --example quickstart
//! ```

use minos::kv::MinosKv;
use minos::types::{DdpModel, MinosError, NodeId, PersistencyModel, ScopeId};

fn main() -> Result<(), MinosError> {
    println!("MINOS quickstart: 5-node replicated KV store, all five DDP models\n");

    for model in DdpModel::all_lin() {
        let mut kv = MinosKv::new(5, model);
        let scoped = model.persistency == PersistencyModel::Scope;
        let scope = scoped.then_some(ScopeId(1));

        // Leaderless: any node coordinates writes.
        kv.put_scoped(NodeId(0), "user:1:name", "alice", scope)?;
        kv.put_scoped(NodeId(3), "user:1:email", "alice@example.com", scope)?;
        if let Some(sc) = scope {
            // Scope model: flush the scope before relying on durability.
            kv.persist_scope(NodeId(0), sc)?;
        }

        // Linearizable: every replica serves the latest value locally.
        let name = kv.get(NodeId(4), "user:1:name")?.expect("written above");
        let email = kv.get(NodeId(2), "user:1:email")?.expect("written above");

        // Durable state: the synchronous models persisted before returning.
        let durable_records = kv.durable(NodeId(1)).durable_records();

        println!(
            "{model:<14} name={:<6} email={:<18} durable-records@n1={durable_records}",
            String::from_utf8_lossy(&name),
            String::from_utf8_lossy(&email),
        );
    }

    println!("\nConcurrent conflicting writes resolve by timestamp order:");
    let mut kv = MinosKv::new(3, DdpModel::lin(PersistencyModel::Synchronous));
    let t1 = kv.put(NodeId(0), "counter", "from-node-0")?;
    let t2 = kv.put(NodeId(2), "counter", "from-node-2")?;
    let winner = kv.get(NodeId(1), "counter")?.expect("written");
    println!(
        "  write@n0 got {t1}, write@n2 got {t2} -> every replica reads {:?}",
        String::from_utf8_lossy(&winner)
    );

    Ok(())
}
