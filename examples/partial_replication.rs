//! Partial replication (extension): records on `k` of `n` nodes, with
//! transparent write redirection and read forwarding.
//!
//! The paper replicates every record on every node "for simplicity"; this
//! example lifts that, showing placement, redirection, and that
//! Linearizability survives forwarded reads.
//!
//! Run with:
//! ```text
//! cargo run -p minos --example partial_replication
//! ```

use minos::kv::{hash_key, MinosKv};
use minos::types::{DdpModel, MinosError, NodeId, PersistencyModel};

fn main() -> Result<(), MinosError> {
    let n = 5;
    let k = 2;
    let mut kv = MinosKv::with_replication(n, k, DdpModel::lin(PersistencyModel::Synchronous));
    println!("{n}-node cluster, {k} replicas per record (hash-ring placement)\n");

    for name in ["users:alice", "users:bob", "orders:17", "carts:9"] {
        let key = hash_key(name);
        let replicas = kv.engine(NodeId(0)).replicas_of(key);
        println!("{name:<12} lives on {replicas:?}");
    }

    println!("\nwrite via a NON-replica (transparent redirect):");
    let key = hash_key("users:alice");
    let replicas = kv.engine(NodeId(0)).replicas_of(key);
    let outsider = (0..n as u16)
        .map(NodeId)
        .find(|nd| !replicas.contains(nd))
        .expect("k < n leaves non-replicas");
    let ts = kv.put(outsider, "users:alice", "v1")?;
    println!("  put at {outsider} -> coordinated by a replica, ts {ts}");

    println!("\nread via a non-replica (forwarded over ReadReq/ReadResp):");
    let v = kv.get(outsider, "users:alice")?.expect("written");
    println!("  get at {outsider} -> {:?}", String::from_utf8_lossy(&v));

    println!("\nonly the replicas hold the data:");
    for nd in 0..n as u16 {
        let node = NodeId(nd);
        let holds = kv.engine(node).record_value(key).is_some();
        println!(
            "  {node}: volatile={holds:<5} durable={}",
            kv.durable(node).durable(key).is_some()
        );
    }

    println!("\nlinearizable across placements: overwrite from each node in turn");
    for i in 0..n as u16 {
        kv.put(NodeId(i), "users:alice", format!("v{}", i + 2))?;
        let read = kv.get(NodeId((i + 1) % n as u16), "users:alice")?.unwrap();
        println!(
            "  put@n{i}, get@n{} -> {:?}",
            (i + 1) % n as u16,
            String::from_utf8_lossy(&read)
        );
    }
    Ok(())
}
