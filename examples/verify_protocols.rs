//! Model-checks the MINOS-B and MINOS-O engines against the Table I
//! correctness conditions (the paper's §VI, done with TLA+/TLC there).
//!
//! Run with:
//! ```text
//! cargo run --release -p minos --example verify_protocols
//! ```

use minos::mc::{check_baseline, check_offload, Workload};
use minos::types::{DdpModel, PersistencyModel};

fn main() {
    let cap = 5_000_000;
    println!("Exhaustive interleaving exploration, Table I invariants\n");

    let mut all_ok = true;
    for p in PersistencyModel::ALL {
        let model = DdpModel::lin(p);
        // MINOS-B explores the 3-node conflict exhaustively; MINOS-O's
        // richer event set (PCIe + FIFO drains) is exhausted at 2 nodes
        // (the 3-node bounded sweep lives in the Table 1 bench).
        let b_workload = if p == PersistencyModel::Scope {
            Workload::scoped_writes_and_persist()
        } else {
            Workload::two_conflicting_writes()
        };
        let o_workload = if p == PersistencyModel::Scope {
            Workload::scoped_writes_and_persist()
        } else {
            Workload::two_conflicting_writes_2n()
        };

        let b = check_baseline(model, &b_workload, cap);
        println!("MINOS-B {model:<14} {b}");
        all_ok &= b.ok();

        let o = check_offload(model, &o_workload, cap);
        println!("MINOS-O {model:<14} {o}");
        all_ok &= o.ok();
    }

    println!("\nconcurrent read workload, <Lin,Synch>:");
    let model = DdpModel::lin(PersistencyModel::Synchronous);
    let b = check_baseline(model, &Workload::writes_with_read(), cap);
    println!("MINOS-B {model:<14} {b}");
    all_ok &= b.ok();

    if all_ok {
        println!("\nall protocols verified.");
    } else {
        println!("\nVIOLATIONS FOUND — see above.");
        std::process::exit(1);
    }
}
