//! YCSB-style workloads on the simulated Table III machine: MINOS-B vs
//! MINOS-O latency and throughput, per DDP model (a small-scale version
//! of the paper's Figure 9 experiment).
//!
//! Run with:
//! ```text
//! cargo run --release -p minos --example ycsb_simulation
//! ```

use minos::net::{driver, Arch};
use minos::types::{DdpModel, SimConfig};
use minos::workload::WorkloadSpec;

fn main() {
    let cfg = SimConfig::paper_defaults();
    let spec = WorkloadSpec::ycsb_default()
        .with_records(2048)
        .with_requests_per_node(2000);

    println!("Simulated 5-node machine, zipfian 50/50, 1 KB records, 2000 reqs/node");
    println!(
        "{:<14} {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9}",
        "model", "B write(us)", "B read(us)", "B kop/s", "O write(us)", "O read(us)", "O kop/s"
    );

    for model in DdpModel::all_lin() {
        let b = driver::run(Arch::baseline(), &cfg, model, &spec, 42);
        let o = driver::run(Arch::minos_o(), &cfg, model, &spec, 42);
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>9.0} | {:>12.2} {:>12.2} {:>9.0}",
            model.to_string(),
            b.write_lat.mean() / 1e3,
            b.read_lat.mean() / 1e3,
            b.total_throughput() / 1e3,
            o.write_lat.mean() / 1e3,
            o.read_lat.mean() / 1e3,
            o.total_throughput() / 1e3,
        );
    }

    println!("\nOffloading speedup (write latency, <Lin,Synch>) by node count:");
    let model = DdpModel::lin(minos::types::PersistencyModel::Synchronous);
    for nodes in [2usize, 4, 6, 8, 10] {
        let cfg = SimConfig::paper_defaults().with_nodes(nodes);
        let b = driver::run(Arch::baseline(), &cfg, model, &spec, 42);
        let o = driver::run(Arch::minos_o(), &cfg, model, &spec, 42);
        println!(
            "  {nodes:>2} nodes: B {:>8.2} us  O {:>8.2} us  -> {:.2}x",
            b.write_lat.mean() / 1e3,
            o.write_lat.mean() / 1e3,
            b.write_lat.mean() / o.write_lat.mean()
        );
    }
}
