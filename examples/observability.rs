//! Observability: trace a threaded cluster run, replay the trace into a
//! Fig. 4-style critical-path breakdown, and export latency histograms.
//!
//! Run with:
//! ```text
//! cargo run -p minos --example observability
//! ```
//!
//! The same sinks attach to every harness (`BCluster::attach_tracer`,
//! `MinosKv::attach_tracer`, `BSim::attach_tracer`, `minos-noded
//! --trace-out/--metrics-out`); this example uses the threaded cluster
//! because its traces carry real wall-clock time. The JSONL file written
//! here is exactly what `minos-trace <file>` replays from the command
//! line.

use minos::cluster::Cluster;
use minos::obs::{self, analyze, format_report, parse_jsonl, JsonlWriter, MetricsSink};
use minos::types::{ClusterConfig, DdpModel, Key, NodeId, PersistencyModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = DdpModel::lin(PersistencyModel::Synchronous);
    let trace_path = std::env::temp_dir().join("minos-observability-example.jsonl");

    // 1. Spawn a 3-node cluster with two sinks attached to every node's
    //    dispatcher: a JSONL trace writer and a latency-histogram sink.
    let writer = JsonlWriter::create(&trace_path)?;
    let (metrics, hists) = MetricsSink::new(model.persistency);
    let mut cfg = ClusterConfig::cloudlab().with_nodes(3);
    cfg.wire_latency_ns = 20_000;
    let cl = Cluster::spawn_observed(cfg, model, vec![obs::shared(writer), obs::shared(metrics)]);

    // 2. A small closed-loop workload: 20 writes and 20 reads.
    for i in 0..20u64 {
        cl.put(
            NodeId((i % 3) as u16),
            Key(i % 5),
            format!("value-{i}").into(),
        )?;
        cl.get(NodeId(((i + 1) % 3) as u16), Key(i % 5))?;
    }
    cl.shutdown(); // flushes the JSONL sink on every node

    // 3. Replay the trace: per-op critical paths + the aggregate
    //    communication/computation split of Fig. 4.
    let mut records = parse_jsonl(&std::fs::read_to_string(&trace_path)?);
    records.sort_by_key(|r| r.at_ns);
    let ops = analyze(&records);
    println!(
        "--- replay of {} ({} records) ---",
        trace_path.display(),
        records.len()
    );
    print!("{}", format_report(&ops, 4));

    // 4. The histogram sink aggregated the same ops; this is the text
    //    `minos-noded --metrics-out` dumps every second.
    println!("\n--- Prometheus exposition (excerpt) ---");
    let text = hists.lock().unwrap().render_prometheus();
    for line in text.lines().filter(|l| !l.contains("_bucket")) {
        println!("{line}");
    }

    println!("\nreplay the same file yourself:");
    println!(
        "  cargo run -p minos-bench --bin minos-trace -- {}",
        trace_path.display()
    );
    Ok(())
}
