//! DeathStarBench `Login` end-to-end latency on MINOS-B vs MINOS-O
//! (the paper's Figure 11 scenario: 16 nodes, 500 µs datacenter RTT).
//!
//! Run with:
//! ```text
//! cargo run --release -p minos --example deathstar_login
//! ```

use minos::net::{driver, Arch};
use minos::types::{DdpModel, SimConfig};
use minos::workload::deathstar::App;

fn main() {
    let mut cfg = SimConfig::paper_defaults().with_nodes(16);
    cfg.datacenter_rtt_ns = 500_000; // 500 us node-to-node RTT (§VIII-C)
    let logins = 4;

    println!("UserService::Login end-to-end latency, 16 nodes, 500 us RTT");
    println!(
        "{:<14} {:<7} {:>14} {:>14} {:>10}",
        "model", "app", "MINOS-B (ms)", "MINOS-O (ms)", "reduction"
    );

    let mut reductions = Vec::new();
    for model in DdpModel::all_lin() {
        for app in [App::SocialNetwork, App::MediaMicroservices] {
            let b = driver::run_deathstar(Arch::baseline(), &cfg, model, app, logins);
            let o = driver::run_deathstar(Arch::minos_o(), &cfg, model, app, logins);
            let reduction = 1.0 - o.login_lat.mean() / b.login_lat.mean();
            reductions.push(reduction);
            println!(
                "{:<14} {:<7} {:>14.3} {:>14.3} {:>9.1}%",
                model.to_string(),
                app.label(),
                b.login_lat.mean() / 1e6,
                o.login_lat.mean() / 1e6,
                reduction * 100.0
            );
        }
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64 * 100.0;
    println!("\naverage end-to-end latency reduction: {avg:.1}% (paper reports 35%)");
}
