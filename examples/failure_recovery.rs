//! Failure detection and log-shipping recovery on the threaded runtime
//! (§III-E): crash a node, watch the heartbeat detectors exclude it,
//! keep serving, then rejoin it via log shipping.
//!
//! Run with:
//! ```text
//! cargo run -p minos --example failure_recovery
//! ```

use minos::cluster::Cluster;
use minos::types::{ClusterConfig, DdpModel, Key, MinosError, NodeId, PersistencyModel};
use std::time::Duration;

fn main() -> Result<(), MinosError> {
    let mut cfg = ClusterConfig::cloudlab().with_nodes(3);
    cfg.wire_latency_ns = 50_000; // 50 us channel latency
    cfg.failure_timeout_ns = 100_000_000; // 100 ms heartbeat timeout

    let cluster = Cluster::spawn(cfg, DdpModel::lin(PersistencyModel::Synchronous));

    println!("3-node threaded cluster up; writing under <Lin,Synch>...");
    cluster.put(NodeId(0), Key(1), "v1".into())?;
    println!(
        "  k1=v1 visible at node 2: {:?}",
        cluster.get(NodeId(2), Key(1))?
    );

    println!("\ncrashing node 2...");
    cluster.crash_node(NodeId(2));
    let detected = cluster.await_failure_detection(NodeId(2), Duration::from_secs(5));
    println!("  heartbeat detectors flagged node 2: {detected}");

    println!("  cluster keeps serving with a 2-node quorum:");
    cluster.put(NodeId(0), Key(1), "v2-written-during-outage".into())?;
    cluster.put(NodeId(1), Key(2), "new-key-during-outage".into())?;
    println!("    k1 at node 1: {:?}", cluster.get(NodeId(1), Key(1))?);

    println!("\nrecovering node 2 (node 0 ships its durable log)...");
    cluster.recover_node(NodeId(2), NodeId(0))?;
    println!("  node 2 rejoined; reads what it missed:");
    println!("    k1 at node 2: {:?}", cluster.get(NodeId(2), Key(1))?);
    println!("    k2 at node 2: {:?}", cluster.get(NodeId(2), Key(2))?);

    println!("  node 2 coordinates writes again:");
    cluster.put(NodeId(2), Key(3), "post-recovery".into())?;
    println!("    k3 at node 0: {:?}", cluster.get(NodeId(0), Key(3))?);

    cluster.shutdown();
    println!("\nclean shutdown.");
    Ok(())
}
