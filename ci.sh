#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 verify (ROADMAP.md).
# Run from the repository root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> ci: all stages passed"
