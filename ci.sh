#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 verify (ROADMAP.md).
# Run from the repository root. Fails fast on the first broken stage.
#
#   ./ci.sh          — the standard gate
#   ./ci.sh --chaos  — additionally runs the seeded-torture block:
#                      mutation smoke (both protocol faults must be found
#                      and shrunk; output includes the reproducing seed),
#                      clean chaos sweeps on the threaded runtime
#                      (fully replicated and 4-shard × 3-replica sharded)
#                      and the TCP runtime, scenario sweeps (YCSB A/E/F,
#                      compose, skew, geo as torture workloads under all
#                      five models), then the crash/rejoin block:
#                      250 seeds per runtime (50 × all 5 models) with up
#                      to two crash→rejoin points per schedule — rolling
#                      restarts under load, audited by the epoch-aware
#                      oracles. The nightly block (500 seeds per model
#                      per runtime) is documented in EXPERIMENTS.md
#                      §Verification.
#   ./ci.sh --bench  — additionally runs the minos-bench quick sweep,
#                      writes BENCH_results.json, and reruns the sweep
#                      with --compare against the file it just wrote.
#                      Both bench runtimes are deterministic, so the
#                      self-compare must report zero regressions — this
#                      gates the sweep, the JSON writer/parser, and the
#                      compare logic in one pass. The sweep includes the
#                      simspeed/* simulator-speed cells (checked present
#                      below), and a final `--par-gate` run insists the
#                      parallel per-shard-group DES mode is bit-identical
#                      to the sequential one.
set -euo pipefail
cd "$(dirname "$0")"

CHAOS=0
BENCH=0
for arg in "$@"; do
    case "$arg" in
    --chaos) CHAOS=1 ;;
    --bench) BENCH=1 ;;
    *)
        echo "unknown flag: $arg (supported: --chaos, --bench)" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> trace assembly: 3-process TCP cluster -> skew-corrected causal timelines"
# Spawn a real multi-process cluster (one clock epoch per process), push
# replicated writes through two coordinators, then require minos-trace
# to assemble the three JSONL shards into timelines whose hops are all
# causally ordered after the clock fit (corrected send <= recv).
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
NODED=target/release/minos-noded
PORT_BASE=$((20000 + RANDOM % 20000))
PEERS=""
for i in 0 1 2; do PEERS="$PEERS 127.0.0.1:$((PORT_BASE + i))"; done
NODED_PIDS=""
for i in 0 1 2; do
    "$NODED" --trace-out "$TRACE_DIR/shard$i.jsonl" \
        "$i" synch "127.0.0.1:$((PORT_BASE + 10 + i))" $PEERS \
        2>/dev/null &
    NODED_PIDS="$NODED_PIDS $!"
done
sleep 1
# Ten replicated puts through each of two coordinators (the offset fit
# wants wire traffic in both directions), over the raw client protocol.
python3 - "$PORT_BASE" <<'PYEOF'
import socket, struct, sys
base = int(sys.argv[1])
def frame(b): return struct.pack('<I', len(b)) + b
def put(s, creq, key, val):
    body = bytes([1]) + struct.pack('<Q', creq) + struct.pack('<Q', key) + b'\x00' + val
    s.sendall(frame(body))
    n = struct.unpack('<I', s.recv(4))[0]
    got = b''
    while len(got) < n: got += s.recv(n - len(got))
for port in (base + 10, base + 12):
    s = socket.create_connection(('127.0.0.1', port), timeout=10)
    for i in range(10): put(s, i + 1, i, b'v')
    s.close()
PYEOF
sleep 0.5
kill $NODED_PIDS 2>/dev/null || true
wait $NODED_PIDS 2>/dev/null || true
target/release/minos-trace --check-causal "$TRACE_DIR"/shard*.jsonl

if [ "$CHAOS" -eq 1 ]; then
    echo "==> chaos: build minos-torture (with fault injection)"
    cargo build --release -p minos-check --features fault-injection
    TORTURE=target/release/minos-torture

    echo "==> chaos: mutation smoke — armed faults must be found and shrunk"
    # A checker that cannot see a dropped INV or a skipped persist is
    # vacuous; each fault must produce a violation within 100 seeds.
    "$TORTURE" --model synch --seeds 100 --clients 2 --ops 8 \
        --fault skip-inv@0 --expect-violation
    "$TORTURE" --model synch --seeds 100 --clients 2 --ops 8 \
        --fault phantom-persist@1 --expect-violation
    "$TORTURE" --runtime tcp --model synch --seeds 20 --clients 2 --ops 8 \
        --fault skip-inv@1 --expect-violation

    echo "==> chaos: rebuild minos-torture (faults compiled out)"
    cargo build --release -p minos-check

    echo "==> chaos: clean sweep — threaded, all models"
    "$TORTURE" --model all --seeds 20 --clients 2 --ops 8

    echo "==> chaos: clean sweep — threaded sharded (4 shards x 3 replicas, 12 nodes)"
    "$TORTURE" --model all --seeds 20 --clients 2 --ops 8 \
        --nodes 12 --shards 4 --replicas 3 --keys 8

    echo "==> chaos: clean sweep — tcp, all models"
    "$TORTURE" --runtime tcp --model all --seeds 5 --clients 2 --ops 8

    echo "==> chaos: scenario sweeps — every open-loop scenario doubles as a torture workload"
    # RMW (ycsb-a/f), scans (ycsb-e), compose flows, the hot-key skew
    # storm, and the WAN geo profile, each under all five models on the
    # threaded runtime; one representative scenario rides the TCP wire.
    for wl in ycsb-a ycsb-e ycsb-f compose skew geo; do
        "$TORTURE" --model all --seeds 6 --clients 2 --ops 8 --workload "$wl"
    done
    "$TORTURE" --runtime tcp --model all --seeds 3 --clients 2 --ops 8 \
        --workload ycsb-a

    echo "==> chaos: crash/rejoin — threaded, 250 seeds (all models, rolling restarts)"
    "$TORTURE" --model all --seeds 50 --clients 2 --ops 8 --max-crashes 2

    echo "==> chaos: crash/rejoin — tcp, 250 seeds (all models, rolling restarts)"
    "$TORTURE" --runtime tcp --model all --seeds 50 --clients 2 --ops 8 \
        --max-crashes 2
fi

if [ "$BENCH" -eq 1 ]; then
    echo "==> bench: build minos-bench"
    cargo build --release -p minos-bench
    BENCH_BIN=target/release/minos-bench

    echo "==> bench: quick sweep -> BENCH_results.json"
    "$BENCH_BIN" --quick --out BENCH_results.json

    echo "==> bench: self-compare (deterministic rerun must show 0 regressions)"
    "$BENCH_BIN" --quick --out target/bench_rerun.json --compare BENCH_results.json --threshold 5%

    echo "==> bench: sim-speed cells self-compare (virtual-time metrics must be deterministic)"
    # The simspeed/* cells ride the quick sweep, so the rerun above
    # already re-measured them; here we insist they exist and that their
    # deterministic metrics survived the --compare gate (wall-clock
    # figures live in gauges, which compare ignores by design).
    CELLS=$(grep -c '"id":"simspeed/' BENCH_results.json || true)
    if [ "$CELLS" -lt 4 ]; then
        echo "expected >=4 simspeed/* cells in BENCH_results.json, found $CELLS" >&2
        exit 1
    fi
    echo "    $CELLS simspeed/* cells present and gated"

    echo "==> bench: parallel-vs-sequential DES equivalence gate"
    "$BENCH_BIN" --quick --par-gate
fi

echo "==> ci: all stages passed"
