//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace uses: the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros,
//! range / tuple / `Just` / `prop_map` / `collection::vec` strategies, and
//! `ProptestConfig::with_cases`. Unlike the real crate there is no
//! shrinking and no persisted failure seeds: each test function draws its
//! cases from a splitmix64 stream seeded deterministically from the test's
//! name, so failures reproduce exactly on re-run.

pub mod test_runner {
    use std::fmt;

    /// Deterministic random source for generating test cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test name so runs are reproducible.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name; any stable hash works.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next value of the splitmix64 stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            self.next_u64() % bound
        }
    }

    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!` family macros.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure with a rendered message.
        Fail(String),
    }

    impl TestCaseError {
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => f.write_str(msg),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: `generate` takes no generics, so strategies can be boxed
    /// for `prop_oneof!`. Combinators carry `Self: Sized` bounds.
    pub trait Strategy {
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies, as built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as u128).wrapping_sub(self.start as u128);
                        let off = (u128::from(rng.next_u64()) % span) as $t;
                        self.start.wrapping_add(off)
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let span = (end as u128) - (start as u128) + 1;
                        let off = (u128::from(rng.next_u64()) % span) as $t;
                        start.wrapping_add(off)
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as $u).wrapping_sub(self.start as $u);
                        let off = (rng.next_u64() as $u % span) as $t;
                        self.start.wrapping_add(off)
                    }
                }
            )*
        };
    }

    signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    #[allow(non_snake_case)]
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Strategy behind [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Full-range strategy for `T`, mirroring `proptest::prelude::any`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size bound for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `elem` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The subset of `proptest::prelude` the workspace imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs `config.cases` times with fresh
/// values drawn from its strategies. See the module docs for the differences
/// from real proptest (no shrinking; name-seeded determinism).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (
        cfg = $cfg:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body, failing the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left,
                            right
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
                    );
                }
            }
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..9, y in 0.0f64..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vec_compose(
            pairs in crate::collection::vec((0u16..4, any::<u8>()), 1..10),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (a, _b) in pairs {
                prop_assert!(a < 4);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                Just(1u64),
                (2u64..5).prop_map(|x| x * 10),
            ],
        ) {
            prop_assert!(v == 1 || (20..50).contains(&v), "unexpected {v}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
