//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module with MPMC channels implemented over a
//! `Mutex<VecDeque>` + `Condvar`. Semantics mirror crossbeam-channel for the
//! surface the workspace uses: cloneable senders and receivers, blocking
//! `recv`, `recv_timeout` with `Timeout`/`Disconnected` discrimination, and
//! disconnect detection via sender/receiver reference counts.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by `send` when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by `recv` when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a bounded MPMC channel.
    ///
    /// The stub does not enforce the capacity bound (senders never block on a
    /// full queue); the workspace only uses `bounded(1)` as a oneshot
    /// rendezvous, for which unbounded behaviour is indistinguishable.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.items.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Blocks until a message arrives, all senders are gone, or `timeout`
        /// elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, wait) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = guard;
                if wait.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Iterates over messages until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u64> = rx.iter().collect();
            h.join().unwrap();
            assert_eq!(got.len(), 100);
        }
    }
}
