//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `Bencher` API surface the bench targets use
//! (`bench_function`, `iter`, `iter_batched`, `criterion_group!`,
//! `criterion_main!`). Instead of criterion's statistical engine it runs a
//! fixed number of timed iterations per sample and prints the mean — enough
//! for relative comparisons and to keep `cargo test`/`cargo bench`
//! compiling and running without network access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark driver with criterion's builder-style configuration.
pub struct Criterion {
    sample_size: usize,
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            iterations: 50,
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` `sample_size` times and prints the mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iterations: self.iterations,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
        }
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let (lo, hi) = per_iter_ns
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        println!(
            "{id:<50} {:>12} [{} .. {}]",
            fmt_ns(mean),
            fmt_ns(lo),
            fmt_ns(hi)
        );
        self
    }

    /// Called by `criterion_main!`; the stub has no persisted state.
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
    }
}
