//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace never serializes through serde (the wire format is the
//! hand-rolled codec in `minos-types::wire`), so the derives only need to
//! make `#[derive(Serialize, Deserialize)]` annotations compile. They emit
//! nothing; the marker traits in the stub `serde` crate carry no methods.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
