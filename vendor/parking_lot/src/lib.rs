//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). Poisoning is ignored: a panicked
//! holder does not poison the lock, matching parking_lot semantics.

use std::sync::{self, TryLockError};

/// Mutex with parking_lot's panic-free `lock` signature.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RwLock with parking_lot's panic-free `read`/`write` signatures.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(3);
        assert_eq!(*rw.read(), 3);
        *rw.write() = 4;
        assert_eq!(*rw.read(), 4);
    }
}
