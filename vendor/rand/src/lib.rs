//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the rand API the workspace uses — `RngCore`,
//! the `Rng` extension trait (`gen`, `gen_range`, `gen_bool`),
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` — over a splitmix64
//! generator. Splitmix64 passes the statistical smoke tests the workload
//! generators rely on (uniformity of `gen::<f64>()`, zipfian hot-key
//! skew), is deterministic per seed, and needs no external code.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u128) - (start as u128) + 1;
                    start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    self.start.wrapping_add((rng.next_u64() as $u % span) as $t)
                }
            }
        )*
    };
}

impl_signed_range!(i32 => u32, i64 => u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + unit_f64(rng) * (self.end() - self.start())
    }
}

pub mod distributions {
    //! The `Standard` distribution used by `Rng::gen`.

    use super::{unit_f64, RngCore};

    /// Distribution over values of `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over the full value range (for
    /// floats, uniform in `[0, 1)`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng) as f32
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator backed by splitmix64.
    ///
    /// Not the real rand `StdRng` (ChaCha12); the workspace only needs a
    /// seedable, statistically reasonable stream, and splitmix64 passes the
    /// uniformity and zipf-skew assertions in the workload tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Returns a generator seeded from the wall clock, mirroring
/// `rand::thread_rng` closely enough for non-cryptographic use.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut below_half = 0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                below_half += 1;
            }
        }
        assert!((350..=650).contains(&below_half), "skewed: {below_half}");
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..7);
            assert!((3..7).contains(&v));
            let w: f64 = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(11);
        assert!(sample(&mut rng) < 1.0);
    }
}
