//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! on protocol types (no serializer is ever instantiated — the wire format
//! is the hand-rolled codec in `minos-types::wire`). This stub provides the
//! two marker traits and, behind the `derive` feature, re-exports no-op
//! derive macros so the annotations compile without pulling in the real
//! serde machinery from the network.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<T: Serialize> Serialize for [T] {}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
