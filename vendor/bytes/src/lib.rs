//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `bytes`:
//! [`Bytes`] is a cheaply cloneable, immutable byte container backed by
//! either a static slice or an atomically reference-counted allocation.
//! Only the surface the MINOS workspace uses is provided.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Creates `Bytes` from a static slice without copying.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies `data` into a new reference-counted allocation.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The underlying bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Copies the content into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a new `Bytes` holding `self[begin..end]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        match &self.repr {
            Repr::Static(s) => Bytes::from_static(&s[range]),
            Repr::Shared(a) => Bytes::copy_from_slice(&a[range]),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(b)),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<String> for Bytes {
    fn eq(&self, other: &String) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<Bytes> for String {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_slice()
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, [1u8, 2, 3]);
        assert_eq!(b.clone(), b);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(Bytes::from_static(b"abc"), "abc");
        assert!(Bytes::new().is_empty());
    }
}
