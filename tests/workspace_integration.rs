//! Cross-crate integration: workload generation driving the KV store, the
//! simulator, and the threaded cluster together.

use minos::cluster::Cluster;
use minos::kv::{hash_key, MinosKv};
use minos::net::{driver, Arch};
use minos::types::{ClusterConfig, DdpModel, Key, NodeId, PersistencyModel, SimConfig};
use minos::workload::{Op, WorkloadSpec};

fn synch() -> DdpModel {
    DdpModel::lin(PersistencyModel::Synchronous)
}

#[test]
fn ycsb_stream_against_minos_kv() {
    // Drive a real generated workload through the functional store and
    // verify replica agreement afterwards.
    let spec = WorkloadSpec::ycsb_default()
        .with_records(20)
        .with_record_bytes(32)
        .with_requests_per_node(60);
    let mut kv = MinosKv::new(3, synch());
    let mut stream = spec.stream(7);
    for i in 0..60u64 {
        let node = NodeId((i % 3) as u16);
        match stream.next_op() {
            Op::Write { key, value } => {
                kv.put(node, key.0.to_le_bytes(), value).unwrap();
            }
            Op::Read { key } => {
                let _ = kv.get(node, key.0.to_le_bytes()).unwrap();
            }
        }
    }
    for k in 0..20u64 {
        let name = k.to_le_bytes();
        let v0 = kv.get(NodeId(0), name).unwrap();
        for n in 1..3 {
            assert_eq!(kv.get(NodeId(n), name).unwrap(), v0, "key {k} node {n}");
        }
    }
}

#[test]
fn simulator_and_functional_store_agree_on_semantics() {
    // The simulator's engines and the functional store must deliver the
    // same converged winner for a conflicting-write schedule.
    let mut kv = MinosKv::new(3, synch());
    kv.put(NodeId(0), "k", "from-0").unwrap();
    kv.put(NodeId(2), "k", "from-2").unwrap();
    let functional = kv.get(NodeId(1), "k").unwrap().unwrap();

    let mut sim = minos::net::BSim::new(
        SimConfig::paper_defaults().with_nodes(3),
        Arch::baseline(),
        synch(),
    );
    let key = hash_key("k");
    sim.submit_write(0, NodeId(0), key, "from-0".into(), None);
    // The second write lands after the first completes (sequential, as in
    // the KV facade).
    sim.run_to_idle();
    sim.submit_write(sim.now(), NodeId(2), key, "from-2".into(), None);
    sim.run_to_idle();
    assert_eq!(sim.engine(NodeId(1)).record_value(key).unwrap(), functional);
}

#[test]
fn threaded_cluster_matches_functional_store() {
    let mut cfg = ClusterConfig::cloudlab().with_nodes(3);
    cfg.wire_latency_ns = 10_000;
    let cl = Cluster::spawn(cfg, synch());
    let mut kv = MinosKv::new(3, synch());

    for i in 0..15u64 {
        let node = NodeId((i % 3) as u16);
        let val = format!("v{i}");
        cl.put(node, Key(i % 4), val.clone().into()).unwrap();
        kv.put(node, (i % 4).to_le_bytes(), val).unwrap();
    }
    for k in 0..4u64 {
        let threaded = cl.get(NodeId(0), Key(k)).unwrap();
        let functional = kv.get(NodeId(0), k.to_le_bytes()).unwrap().unwrap();
        assert_eq!(threaded, functional, "key {k}");
    }
    cl.shutdown();
}

#[test]
fn simulation_statistics_are_consistent() {
    let spec = WorkloadSpec::ycsb_default()
        .with_records(64)
        .with_requests_per_node(100);
    let r = driver::run(
        Arch::minos_o(),
        &SimConfig::paper_defaults(),
        synch(),
        &spec,
        5,
    );
    assert_eq!(r.writes as usize, r.write_lat.count());
    assert_eq!(r.reads as usize, r.read_lat.count());
    assert!(r.makespan > 0);
    assert!(r.write_lat.min() > 0);
    assert!(r.write_lat.max() >= r.write_lat.min());
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time surface check: each subsystem is reachable.
    let _ = minos::types::SimConfig::paper_defaults();
    let _ = minos::sim::LatencyStats::new();
    let _ = minos::nvm::NvmDevice::new();
    let _ = minos::workload::WorkloadSpec::ycsb_default();
    let _ = minos::core::Store::new();
    let _ = minos::net::Arch::minos_o();
}
