//! The same protocol engines run under four harnesses (loopback cluster,
//! discrete-event simulator, threaded cluster, model checker). These tests
//! pin down that the harnesses agree on protocol outcomes.

use minos::cluster::Cluster;
use minos::core::loopback::{BCluster, OCluster};
use minos::kv::hash_key;
use minos::mc::{check_baseline, check_offload, Workload};
use minos::net::{Arch, BSim, CompletionKind, OSim};
use minos::types::{
    ClusterConfig, DdpModel, Key, NodeId, PersistencyModel, ScopeId, ShardMap, SimConfig, Ts, Value,
};
use std::collections::BTreeMap;

fn all_models() -> [DdpModel; 5] {
    DdpModel::all_lin()
}

#[test]
fn loopback_and_simulator_converge_identically_for_b() {
    for model in all_models() {
        if model.persistency == PersistencyModel::Scope {
            continue;
        }
        let key = hash_key("x");
        let mut loopback = BCluster::new(4, model);
        let mut sim = BSim::new(
            SimConfig::paper_defaults().with_nodes(4),
            Arch::baseline(),
            model,
        );
        // Two concurrent conflicting writes, submitted identically.
        loopback.submit_write(NodeId(1), key, "a".into(), None);
        loopback.submit_write(NodeId(3), key, "b".into(), None);
        sim.submit_write(0, NodeId(1), key, "a".into(), None);
        sim.submit_write(0, NodeId(3), key, "b".into(), None);
        loopback.run();
        sim.run_to_idle();
        // Both harnesses must converge to the same winner: the timestamp
        // order is protocol-determined, not harness-determined.
        let lw = loopback.engine(NodeId(0)).record_value(key).unwrap();
        let sw = sim.engine(NodeId(0)).record_value(key).unwrap();
        assert_eq!(lw, sw, "{model}: harness-dependent winner");
    }
}

#[test]
fn loopback_and_simulator_converge_identically_for_o() {
    for model in all_models() {
        if model.persistency == PersistencyModel::Scope {
            continue;
        }
        let key = hash_key("y");
        let mut loopback = OCluster::new(3, model);
        let mut sim = OSim::new(
            SimConfig::paper_defaults().with_nodes(3),
            Arch::minos_o(),
            model,
        );
        loopback.submit_write(NodeId(0), key, "a".into(), None);
        loopback.submit_write(NodeId(2), key, "b".into(), None);
        sim.submit_write(0, NodeId(0), key, "a".into(), None);
        sim.submit_write(0, NodeId(2), key, "b".into(), None);
        loopback.run();
        sim.run_to_idle();
        let lw = loopback.engine(NodeId(1)).record_value(key).unwrap();
        let sw = sim.engine(NodeId(1)).record_value(key).unwrap();
        assert_eq!(lw, sw, "{model}");
    }
}

/// One step of the parity workload.
enum POp {
    Write(NodeId, Key, &'static str),
    Read(NodeId, Key),
    PersistScope(NodeId),
}

/// The shared parity workload: per-key write/read interleavings across
/// all three nodes, every read preceded by at least one write to its key.
fn parity_ops() -> Vec<POp> {
    use POp::{PersistScope, Read, Write};
    let (n0, n1, n2) = (NodeId(0), NodeId(1), NodeId(2));
    let (k1, k2, k3) = (Key(101), Key(202), Key(303));
    vec![
        Write(n0, k1, "a0"),
        Write(n1, k1, "a1"),
        Read(n2, k1),
        Write(n2, k2, "b0"),
        Read(n0, k2),
        Write(n1, k2, "b1"),
        Read(n2, k2),
        Write(n0, k3, "c0"),
        Write(n0, k3, "c1"),
        Read(n1, k3),
        Write(n2, k1, "a2"),
        Read(n0, k1),
        PersistScope(n0),
        PersistScope(n1),
        PersistScope(n2),
    ]
}

/// The scope a node's writes are tagged with under `<Lin, Scope>`.
fn scope_of(node: NodeId) -> ScopeId {
    ScopeId(u32::from(node.0) + 1)
}

/// Per-key completion sequence: operation kind and version, in
/// submission order, plus the value each completed write installed.
#[derive(Debug, Default, PartialEq, Eq)]
struct ParityTrace {
    per_key: BTreeMap<Key, Vec<(char, Ts)>>,
    write_values: BTreeMap<(Key, Ts), Value>,
}

impl ParityTrace {
    fn write(&mut self, key: Key, ts: Ts, value: Value) {
        self.per_key.entry(key).or_default().push(('W', ts));
        self.write_values.insert((key, ts), value);
    }

    fn read(&mut self, key: Key, ts: Ts, value: Option<&Value>) {
        self.per_key.entry(key).or_default().push(('R', ts));
        if let Some(v) = value {
            // The observed value must be the one installed at `ts`.
            assert_eq!(Some(v), self.write_values.get(&(key, ts)));
        }
    }
}

fn loopback_trace(model: DdpModel, scoped: bool) -> ParityTrace {
    use minos::core::loopback::Completion;
    let mut cl = BCluster::new(3, model);
    let mut trace = ParityTrace::default();
    let mut seen = 0;
    for op in parity_ops() {
        match op {
            POp::Write(node, key, v) => {
                cl.submit_write(node, key, v.into(), scoped.then(|| scope_of(node)));
            }
            POp::Read(node, key) => {
                cl.submit_read(node, key);
            }
            POp::PersistScope(node) => {
                if !scoped {
                    continue;
                }
                cl.submit_persist_scope(node, scope_of(node));
            }
        }
        cl.run();
        for c in &cl.completions()[seen..] {
            match c {
                Completion::Write { key, ts, .. } => {
                    let POp::Write(_, _, v) = op else {
                        panic!("{model}: write completion for a non-write")
                    };
                    trace.write(*key, *ts, v.into());
                }
                Completion::Read { key, value, ts, .. } => {
                    trace.read(*key, *ts, Some(value));
                }
                Completion::PersistScope { .. } => {}
                Completion::MultiWrite { .. } => {
                    unreachable!("no multi-key writes in the parity workload")
                }
            }
        }
        seen = cl.completions().len();
    }
    trace
}

fn simulator_trace(model: DdpModel, scoped: bool) -> ParityTrace {
    let mut sim = BSim::new(
        SimConfig::paper_defaults().with_nodes(3),
        Arch::baseline(),
        model,
    );
    let mut trace = ParityTrace::default();
    let mut t = 0;
    for op in parity_ops() {
        let submitted = match op {
            POp::Write(node, key, v) => {
                Some(sim.submit_write(t, node, key, v.into(), scoped.then(|| scope_of(node))))
            }
            POp::Read(node, key) => Some(sim.submit_read(t, node, key)),
            POp::PersistScope(node) => {
                scoped.then(|| sim.submit_persist_scope(t, node, scope_of(node)))
            }
        };
        let Some(req) = submitted else { continue };
        sim.run_to_idle();
        for rec in sim.drain_completions() {
            if rec.req != req {
                continue;
            }
            t = rec.at + 1;
            match rec.kind {
                CompletionKind::Write => {
                    let POp::Write(_, _, v) = op else {
                        panic!("{model}: write completion for a non-write")
                    };
                    trace.write(rec.key.unwrap(), rec.ts, v.into());
                }
                // The simulator's completion records carry no payload;
                // the version pins the value via `write_values`.
                CompletionKind::Read => trace.read(rec.key.unwrap(), rec.ts, None),
                CompletionKind::PersistScope => {}
                CompletionKind::MultiWrite => {
                    unreachable!("no multi-key writes in the parity workload")
                }
            }
        }
    }
    trace
}

fn threaded_trace(model: DdpModel, scoped: bool) -> ParityTrace {
    let mut cfg = ClusterConfig::cloudlab().with_nodes(3);
    cfg.wire_latency_ns = 20_000;
    let cl = Cluster::spawn(cfg, model);
    let mut trace = ParityTrace::default();
    for op in parity_ops() {
        match op {
            POp::Write(node, key, v) => {
                let ts = cl
                    .put_scoped(node, key, v.into(), scoped.then(|| scope_of(node)))
                    .unwrap();
                trace.write(key, ts, v.into());
            }
            POp::Read(node, key) => {
                let (value, ts) = cl.get_versioned(node, key).unwrap();
                trace.read(key, ts, Some(&value));
            }
            POp::PersistScope(node) => {
                if !scoped {
                    continue;
                }
                cl.persist_scope(node, scope_of(node)).unwrap();
            }
        }
    }
    cl.shutdown();
    trace
}

/// One step of the sharded parity workload (2 shards × 2 replicas over
/// 4 nodes; even keys → shard 0 = {0,1}, odd keys → shard 1 = {2,3}).
enum SOp {
    Write(NodeId, Key, &'static str),
    Multi(NodeId, &'static [(u64, &'static str)]),
    Read(NodeId, Key),
    PersistScope(NodeId),
}

/// The sharded parity workload: singles and reads routed across both
/// shard groups plus cross-shard multi-key batches, from every node.
fn sharded_parity_ops() -> Vec<SOp> {
    use SOp::{Multi, PersistScope, Read, Write};
    let (n0, n1, n2, n3) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    let (k0, k1, k2, k3) = (Key(100), Key(201), Key(302), Key(403));
    vec![
        Write(n0, k0, "a0"),
        Write(n2, k1, "b0"),
        Read(n3, k0),
        Multi(n1, &[(100, "m0"), (201, "m1")]), // crosses both shards
        Read(n0, k1),
        Write(n3, k2, "c0"),
        Multi(n0, &[(302, "m2"), (403, "m3")]),
        Read(n1, k3),
        Read(n2, k2),
        Write(n1, k0, "a1"),
        Read(n0, k0),
        PersistScope(n0),
        PersistScope(n2),
    ]
}

/// Per-key completion structure of a sharded run: single writes ('W')
/// and reads ('R') carry their protocol timestamps; a multi-key barrier
/// marks each of its keys with ('M', zero) at its release point.
#[derive(Debug, Default, PartialEq, Eq)]
struct ShardedTrace {
    per_key: BTreeMap<Key, Vec<(char, Ts)>>,
}

impl ShardedTrace {
    fn push(&mut self, key: Key, kind: char, ts: Ts) {
        self.per_key.entry(key).or_default().push((kind, ts));
    }
}

/// The converged value at each key's replica group.
fn converged_values<F: Fn(NodeId, Key) -> Option<Value>>(
    map: &ShardMap,
    read: F,
) -> BTreeMap<Key, Value> {
    [100u64, 201, 302, 403]
        .into_iter()
        .map(|k| {
            let key = Key(k);
            let replicas = map.replicas_of_key(key);
            let value = read(replicas[0], key).expect("replica holds the key");
            // Every replica of the group agrees.
            for &r in &replicas[1..] {
                assert_eq!(read(r, key).as_ref(), Some(&value), "split group at {key}");
            }
            (key, value)
        })
        .collect()
}

fn sharded_loopback_trace(
    model: DdpModel,
    scoped: bool,
    map: &ShardMap,
) -> (ShardedTrace, BTreeMap<Key, Value>) {
    use minos::core::loopback::Completion;
    let mut cl = BCluster::with_placement(map.clone(), model);
    let mut trace = ShardedTrace::default();
    let mut seen = 0;
    for op in sharded_parity_ops() {
        match op {
            SOp::Write(node, key, v) => {
                cl.submit_write(node, key, v.into(), scoped.then(|| scope_of(node)));
            }
            SOp::Multi(node, kvs) => {
                let writes = kvs.iter().map(|&(k, v)| (Key(k), v.into())).collect();
                cl.submit_write_multi(node, writes, scoped.then(|| scope_of(node)));
            }
            SOp::Read(node, key) => {
                cl.submit_read(node, key);
            }
            SOp::PersistScope(node) => {
                if !scoped {
                    continue;
                }
                cl.submit_persist_scope(node, scope_of(node));
            }
        }
        cl.run();
        for c in &cl.completions()[seen..] {
            match c {
                Completion::Write { key, ts, .. } => trace.push(*key, 'W', *ts),
                Completion::Read { key, ts, .. } => trace.push(*key, 'R', *ts),
                Completion::MultiWrite { keys, .. } => {
                    for k in keys {
                        trace.push(*k, 'M', Ts::zero());
                    }
                }
                Completion::PersistScope { .. } => {}
            }
        }
        seen = cl.completions().len();
    }
    let values = converged_values(map, |n, k| cl.engine(n).record_value(k));
    (trace, values)
}

fn sharded_simulator_trace(
    model: DdpModel,
    scoped: bool,
    map: &ShardMap,
) -> (ShardedTrace, BTreeMap<Key, Value>) {
    let mut sim = BSim::with_placement(
        SimConfig::paper_defaults().with_nodes(4),
        Arch::baseline(),
        model,
        map.clone(),
    );
    let mut trace = ShardedTrace::default();
    let mut t = 0;
    for op in sharded_parity_ops() {
        let submitted = match op {
            SOp::Write(node, key, v) => {
                Some(sim.submit_write(t, node, key, v.into(), scoped.then(|| scope_of(node))))
            }
            SOp::Multi(node, kvs) => {
                let writes = kvs.iter().map(|&(k, v)| (Key(k), v.into())).collect();
                Some(sim.submit_write_multi(t, node, writes, scoped.then(|| scope_of(node))))
            }
            SOp::Read(node, key) => Some(sim.submit_read(t, node, key)),
            SOp::PersistScope(node) => {
                scoped.then(|| sim.submit_persist_scope(t, node, scope_of(node)))
            }
        };
        let Some(req) = submitted else { continue };
        sim.run_to_idle();
        for rec in sim.drain_completions() {
            if rec.req != req {
                continue;
            }
            t = rec.at + 1;
            match rec.kind {
                CompletionKind::Write => trace.push(rec.key.unwrap(), 'W', rec.ts),
                CompletionKind::Read => trace.push(rec.key.unwrap(), 'R', rec.ts),
                CompletionKind::MultiWrite => {
                    let SOp::Multi(_, kvs) = op else {
                        panic!("{model}: barrier completion for a non-multi op")
                    };
                    for &(k, _) in kvs {
                        trace.push(Key(k), 'M', Ts::zero());
                    }
                }
                CompletionKind::PersistScope => {}
            }
        }
    }
    let values = converged_values(map, |n, k| sim.engine(n).record_value(k));
    (trace, values)
}

#[test]
fn sharded_dispatch_parity_loopback_vs_simulator() {
    // The sharded counterpart of the dispatch-parity guarantee: routed
    // singles, cross-shard multi-key barriers, and scope flushes produce
    // identical per-key completion structure and identical converged
    // replica state on the loopback cluster and the DES kernel, under
    // every persistency model.
    let map = ShardMap::uniform(2, 4, 2);
    for model in all_models() {
        let scoped = model.persistency == PersistencyModel::Scope;
        let (lo, lo_vals) = sharded_loopback_trace(model, scoped, &map);
        let (sim, sim_vals) = sharded_simulator_trace(model, scoped, &map);
        assert_eq!(lo, sim, "{model}: sharded loopback vs DES divergence");
        assert_eq!(lo_vals, sim_vals, "{model}: converged values diverge");
    }
}

#[test]
fn dispatch_parity_across_loopback_threaded_and_simulator() {
    // The tentpole guarantee of the shared runtime dispatcher: one
    // workload replayed through three harnesses produces identical
    // per-key value/version completion sequences under every
    // persistency model.
    for model in all_models() {
        let scoped = model.persistency == PersistencyModel::Scope;
        let lo = loopback_trace(model, scoped);
        let sim = simulator_trace(model, scoped);
        let th = threaded_trace(model, scoped);
        assert_eq!(lo, sim, "{model}: loopback vs simulator divergence");
        assert_eq!(lo, th, "{model}: loopback vs threaded divergence");
    }
}

#[test]
fn model_checker_verifies_synch_quickly() {
    // A smoke-sized exhaustive check runs in the normal test suite; the
    // full sweep lives in the verify_protocols example and Table 1 bench.
    let model = DdpModel::lin(PersistencyModel::Synchronous);
    let b = check_baseline(model, &Workload::two_conflicting_writes(), 1_000_000);
    assert!(b.ok(), "MINOS-B <Lin,Synch>: {b}");
    assert!(b.terminal_states > 0);
}

#[test]
fn model_checker_verifies_offload_synch() {
    // 2 nodes: the MINOS-O state space (PCIe + FIFO drains) stays
    // exhaustively explorable; the 3-node bounded sweep lives in the
    // Table 1 bench.
    let model = DdpModel::lin(PersistencyModel::Synchronous);
    let o = check_offload(model, &Workload::two_conflicting_writes_2n(), 2_000_000);
    assert!(o.ok(), "MINOS-O <Lin,Synch>: {o}");
}

#[test]
fn model_checker_verifies_two_keys() {
    let model = DdpModel::lin(PersistencyModel::Eventual);
    let b = check_baseline(model, &Workload::two_keys_three_writes(), 2_000_000);
    assert!(b.ok(), "MINOS-B <Lin,Event> two keys: {b}");
}
