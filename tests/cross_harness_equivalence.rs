//! The same protocol engines run under four harnesses (loopback cluster,
//! discrete-event simulator, threaded cluster, model checker). These tests
//! pin down that the harnesses agree on protocol outcomes.

use minos::core::loopback::{BCluster, OCluster};
use minos::kv::hash_key;
use minos::mc::{check_baseline, check_offload, Workload};
use minos::net::{Arch, BSim, OSim};
use minos::types::{DdpModel, NodeId, PersistencyModel, SimConfig};

fn all_models() -> [DdpModel; 5] {
    DdpModel::all_lin()
}

#[test]
fn loopback_and_simulator_converge_identically_for_b() {
    for model in all_models() {
        if model.persistency == PersistencyModel::Scope {
            continue;
        }
        let key = hash_key("x");
        let mut loopback = BCluster::new(4, model);
        let mut sim = BSim::new(
            SimConfig::paper_defaults().with_nodes(4),
            Arch::baseline(),
            model,
        );
        // Two concurrent conflicting writes, submitted identically.
        loopback.submit_write(NodeId(1), key, "a".into(), None);
        loopback.submit_write(NodeId(3), key, "b".into(), None);
        sim.submit_write(0, NodeId(1), key, "a".into(), None);
        sim.submit_write(0, NodeId(3), key, "b".into(), None);
        loopback.run();
        sim.run_to_idle();
        // Both harnesses must converge to the same winner: the timestamp
        // order is protocol-determined, not harness-determined.
        let lw = loopback.engine(NodeId(0)).record_value(key).unwrap();
        let sw = sim.engine(NodeId(0)).record_value(key).unwrap();
        assert_eq!(lw, sw, "{model}: harness-dependent winner");
    }
}

#[test]
fn loopback_and_simulator_converge_identically_for_o() {
    for model in all_models() {
        if model.persistency == PersistencyModel::Scope {
            continue;
        }
        let key = hash_key("y");
        let mut loopback = OCluster::new(3, model);
        let mut sim = OSim::new(
            SimConfig::paper_defaults().with_nodes(3),
            Arch::minos_o(),
            model,
        );
        loopback.submit_write(NodeId(0), key, "a".into(), None);
        loopback.submit_write(NodeId(2), key, "b".into(), None);
        sim.submit_write(0, NodeId(0), key, "a".into(), None);
        sim.submit_write(0, NodeId(2), key, "b".into(), None);
        loopback.run();
        sim.run_to_idle();
        let lw = loopback.engine(NodeId(1)).record_value(key).unwrap();
        let sw = sim.engine(NodeId(1)).record_value(key).unwrap();
        assert_eq!(lw, sw, "{model}");
    }
}

#[test]
fn model_checker_verifies_synch_quickly() {
    // A smoke-sized exhaustive check runs in the normal test suite; the
    // full sweep lives in the verify_protocols example and Table 1 bench.
    let model = DdpModel::lin(PersistencyModel::Synchronous);
    let b = check_baseline(model, &Workload::two_conflicting_writes(), 1_000_000);
    assert!(b.ok(), "MINOS-B <Lin,Synch>: {b}");
    assert!(b.terminal_states > 0);
}

#[test]
fn model_checker_verifies_offload_synch() {
    // 2 nodes: the MINOS-O state space (PCIe + FIFO drains) stays
    // exhaustively explorable; the 3-node bounded sweep lives in the
    // Table 1 bench.
    let model = DdpModel::lin(PersistencyModel::Synchronous);
    let o = check_offload(model, &Workload::two_conflicting_writes_2n(), 2_000_000);
    assert!(o.ok(), "MINOS-O <Lin,Synch>: {o}");
}

#[test]
fn model_checker_verifies_two_keys() {
    let model = DdpModel::lin(PersistencyModel::Eventual);
    let b = check_baseline(model, &Workload::two_keys_three_writes(), 2_000_000);
    assert!(b.ok(), "MINOS-B <Lin,Event> two keys: {b}");
}
